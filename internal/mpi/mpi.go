// Package mpi is an in-process message-passing runtime with MPI
// semantics: ranks are goroutines, communicators provide tagged
// point-to-point messaging and the collectives the baselines and proxy
// applications need (Barrier, Bcast, Gather, Reduce, Allreduce,
// Alltoall), plus communicator splitting for node-local groups.
//
// It stands in for the MPI ecosystem the paper's middleware runs on:
// the synchronization structure and data movement of the algorithms
// are preserved; the transport is shared memory instead of a network.
package mpi

import (
	"fmt"
	"math"
	"sync"
)

// AnySource matches a message from any rank in Recv.
const AnySource = -1

// Comm is a communicator: a group of ranks that can exchange messages.
// Each rank holds its own *Comm handle; handles must not be shared
// between ranks.
type Comm struct {
	rank  int
	world *group
}

// group is the shared state of one communicator.
type group struct {
	size  int
	boxes []*mailbox
	bar   *barrier
	coll  *collectiveState
}

type message struct {
	src, tag int
	data     []byte
}

// mailbox matches incoming messages against (source, tag) queries.
type mailbox struct {
	mu      sync.Mutex
	cond    *sync.Cond
	pending []message
}

func newMailbox() *mailbox {
	m := &mailbox{}
	m.cond = sync.NewCond(&m.mu)
	return m
}

func (m *mailbox) put(msg message) {
	m.mu.Lock()
	m.pending = append(m.pending, msg)
	m.cond.Broadcast()
	m.mu.Unlock()
}

func (m *mailbox) get(src, tag int) message {
	m.mu.Lock()
	defer m.mu.Unlock()
	for {
		for i, msg := range m.pending {
			if (src == AnySource || msg.src == src) && msg.tag == tag {
				m.pending = append(m.pending[:i], m.pending[i+1:]...)
				return msg
			}
		}
		m.cond.Wait()
	}
}

// barrier is a reusable sense-reversing barrier.
type barrier struct {
	mu      sync.Mutex
	cond    *sync.Cond
	parties int
	arrived int
	gen     int
}

func newBarrier(parties int) *barrier {
	b := &barrier{parties: parties}
	b.cond = sync.NewCond(&b.mu)
	return b
}

func (b *barrier) await() {
	b.mu.Lock()
	defer b.mu.Unlock()
	gen := b.gen
	b.arrived++
	if b.arrived == b.parties {
		b.arrived = 0
		b.gen++
		b.cond.Broadcast()
		return
	}
	for gen == b.gen {
		b.cond.Wait()
	}
}

// collectiveState carries per-collective scratch space (split, gather).
type collectiveState struct {
	mu    sync.Mutex
	slots map[string][]interface{}
}

func newGroup(size int) *group {
	g := &group{
		size:  size,
		boxes: make([]*mailbox, size),
		bar:   newBarrier(size),
		coll:  &collectiveState{slots: map[string][]interface{}{}},
	}
	for i := range g.boxes {
		g.boxes[i] = newMailbox()
	}
	return g
}

// Run starts an n-rank world and executes body once per rank in its own
// goroutine, returning when every rank has finished.
func Run(n int, body func(c *Comm)) {
	if n <= 0 {
		panic("mpi: world size must be positive")
	}
	g := newGroup(n)
	var wg sync.WaitGroup
	for r := 0; r < n; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			body(&Comm{rank: rank, world: g})
		}(r)
	}
	wg.Wait()
}

// Rank returns this rank's index within the communicator.
func (c *Comm) Rank() int { return c.rank }

// Size returns the number of ranks in the communicator.
func (c *Comm) Size() int { return c.world.size }

// Send delivers data to rank dst with the given tag. The payload is
// copied, so the caller may reuse its buffer immediately (MPI buffered-
// send semantics).
func (c *Comm) Send(dst, tag int, data []byte) {
	if dst < 0 || dst >= c.world.size {
		panic(fmt.Sprintf("mpi: Send to invalid rank %d (size %d)", dst, c.world.size))
	}
	buf := append([]byte(nil), data...)
	c.world.boxes[dst].put(message{src: c.rank, tag: tag, data: buf})
}

// Recv blocks until a message with the given tag arrives from src
// (or from anyone if src == AnySource) and returns its payload and
// origin.
func (c *Comm) Recv(src, tag int) ([]byte, int) {
	msg := c.world.boxes[c.rank].get(src, tag)
	return msg.data, msg.src
}

// Barrier blocks until every rank of the communicator has arrived.
func (c *Comm) Barrier() { c.world.bar.await() }

// internal tags for collectives, kept clear of user tags by the offset.
const (
	tagBcast = 1 << 28
	tagGath  = 2 << 28
	tagAll   = 3 << 28
)

// Bcast distributes root's buffer to every rank and returns it.
func (c *Comm) Bcast(root int, data []byte) []byte {
	if c.rank == root {
		for r := 0; r < c.world.size; r++ {
			if r != root {
				c.Send(r, tagBcast, data)
			}
		}
		return append([]byte(nil), data...)
	}
	out, _ := c.Recv(root, tagBcast)
	return out
}

// Gather collects each rank's buffer at root; root receives a slice
// indexed by rank, others receive nil.
func (c *Comm) Gather(root int, data []byte) [][]byte {
	if c.rank != root {
		c.Send(root, tagGath, data)
		return nil
	}
	out := make([][]byte, c.world.size)
	out[root] = append([]byte(nil), data...)
	// Receive from each source explicitly: per-(src, tag) FIFO ordering
	// keeps back-to-back collectives from stealing each other's messages.
	for r := 0; r < c.world.size; r++ {
		if r == root {
			continue
		}
		msg := c.world.boxes[c.rank].get(r, tagGath)
		out[r] = msg.data
	}
	return out
}

// Op is a reduction operator.
type Op func(a, b float64) float64

// Builtin reduction operators.
var (
	Sum Op = func(a, b float64) float64 { return a + b }
	Max Op = func(a, b float64) float64 {
		if a > b {
			return a
		}
		return b
	}
	Min Op = func(a, b float64) float64 {
		if a < b {
			return a
		}
		return b
	}
)

// Reduce combines one float64 per rank at root; root gets the result,
// other ranks get 0.
func (c *Comm) Reduce(root int, op Op, v float64) float64 {
	parts := c.Gather(root, f64bytes(v))
	if c.rank != root {
		return 0
	}
	acc := bytesF64(parts[0])
	for _, p := range parts[1:] {
		acc = op(acc, bytesF64(p))
	}
	return acc
}

// Allreduce combines one float64 per rank and returns the result on
// every rank.
func (c *Comm) Allreduce(op Op, v float64) float64 {
	res := c.Reduce(0, op, v)
	out := c.Bcast(0, f64bytes(res))
	return bytesF64(out)
}

// Alltoall sends bufs[r] to rank r and returns the buffers received,
// indexed by source rank. len(bufs) must equal Size.
func (c *Comm) Alltoall(bufs [][]byte) [][]byte {
	if len(bufs) != c.world.size {
		panic(fmt.Sprintf("mpi: Alltoall with %d buffers in a %d-rank comm", len(bufs), c.world.size))
	}
	for r, b := range bufs {
		if r == c.rank {
			continue
		}
		c.Send(r, tagAll+c.rank, b)
	}
	out := make([][]byte, c.world.size)
	out[c.rank] = append([]byte(nil), bufs[c.rank]...)
	for r := 0; r < c.world.size; r++ {
		if r == c.rank {
			continue
		}
		msg, _ := c.Recv(r, tagAll+r)
		out[r] = msg
	}
	return out
}

// Split partitions the communicator by color, ordering ranks within each
// new communicator by (key, old rank) as MPI_Comm_split does. Every rank
// of the communicator must call Split.
func (c *Comm) Split(color, key int) *Comm {
	type entry struct{ color, key, rank int }
	slot := c.collectAll("split", entry{color: color, key: key, rank: c.rank})
	// Deterministic membership: all ranks compute the same grouping.
	var members []entry
	for _, v := range slot {
		e := v.(entry)
		if e.color == color {
			members = append(members, e)
		}
	}
	// Insertion sort by (key, rank): groups are small.
	for i := 1; i < len(members); i++ {
		for j := i; j > 0; j-- {
			a, b := members[j-1], members[j]
			if a.key > b.key || (a.key == b.key && a.rank > b.rank) {
				members[j-1], members[j] = members[j], members[j-1]
			} else {
				break
			}
		}
	}
	myIdx := -1
	for i, e := range members {
		if e.rank == c.rank {
			myIdx = i
		}
	}
	// One rank per (color) builds the shared group; use a keyed
	// rendezvous so each member receives the same *group.
	g := c.rendezvousGroup(fmt.Sprintf("split-group-%d", color), len(members), myIdx)
	return &Comm{rank: myIdx, world: g}
}

// collectAll gathers one value from every rank of the communicator and
// returns the full set to each caller (a small all-gather over shared
// state rather than messages; simpler and deadlock-free for metadata).
func (c *Comm) collectAll(kind string, v interface{}) []interface{} {
	st := c.world.coll
	st.mu.Lock()
	st.slots[kind] = append(st.slots[kind], v)
	st.mu.Unlock()
	c.Barrier() // all contributions in
	st.mu.Lock()
	out := append([]interface{}(nil), st.slots[kind]...)
	st.mu.Unlock()
	c.Barrier() // all copies taken
	if c.rank == 0 {
		st.mu.Lock()
		delete(st.slots, kind)
		st.mu.Unlock()
	}
	c.Barrier() // reset complete before anyone reuses the slot
	return out
}

// rendezvousGroup returns a per-key shared group created once and handed
// to all n members.
func (c *Comm) rendezvousGroup(key string, n, myIdx int) *group {
	st := c.world.coll
	st.mu.Lock()
	slotKey := "rv-" + key
	if st.slots[slotKey] == nil {
		st.slots[slotKey] = []interface{}{newGroup(n)}
	}
	g := st.slots[slotKey][0].(*group)
	st.mu.Unlock()
	c.Barrier()
	// Cleanup after everyone has the pointer.
	if myIdx == 0 {
		st.mu.Lock()
		delete(st.slots, slotKey)
		st.mu.Unlock()
	}
	c.Barrier()
	return g
}

func f64bytes(v float64) []byte {
	var b [8]byte
	u := math.Float64bits(v)
	for i := 0; i < 8; i++ {
		b[i] = byte(u >> (8 * i))
	}
	return b[:]
}

func bytesF64(b []byte) float64 {
	var u uint64
	for i := 0; i < 8; i++ {
		u |= uint64(b[i]) << (8 * i)
	}
	return math.Float64frombits(u)
}
