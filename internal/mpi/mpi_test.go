package mpi

import (
	"bytes"
	"encoding/binary"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestSendRecv(t *testing.T) {
	Run(2, func(c *Comm) {
		if c.Rank() == 0 {
			c.Send(1, 42, []byte("ping"))
			data, src := c.Recv(1, 43)
			if string(data) != "pong" || src != 1 {
				t.Errorf("rank 0 got %q from %d", data, src)
			}
		} else {
			data, src := c.Recv(0, 42)
			if string(data) != "ping" || src != 0 {
				t.Errorf("rank 1 got %q from %d", data, src)
			}
			c.Send(0, 43, []byte("pong"))
		}
	})
}

func TestSendCopiesPayload(t *testing.T) {
	Run(2, func(c *Comm) {
		if c.Rank() == 0 {
			buf := []byte("aaaa")
			c.Send(1, 1, buf)
			copy(buf, "bbbb") // mutate after send
			c.Barrier()
		} else {
			c.Barrier()
			data, _ := c.Recv(0, 1)
			if string(data) != "aaaa" {
				t.Errorf("send did not copy: got %q", data)
			}
		}
	})
}

func TestTagMatching(t *testing.T) {
	Run(2, func(c *Comm) {
		if c.Rank() == 0 {
			c.Send(1, 7, []byte("seven"))
			c.Send(1, 5, []byte("five"))
		} else {
			// Receive out of order by tag.
			five, _ := c.Recv(0, 5)
			seven, _ := c.Recv(0, 7)
			if string(five) != "five" || string(seven) != "seven" {
				t.Errorf("tag matching failed: %q %q", five, seven)
			}
		}
	})
}

func TestAnySource(t *testing.T) {
	Run(4, func(c *Comm) {
		if c.Rank() == 0 {
			seen := map[int]bool{}
			for i := 0; i < 3; i++ {
				_, src := c.Recv(AnySource, 9)
				seen[src] = true
			}
			if len(seen) != 3 {
				t.Errorf("AnySource saw %v", seen)
			}
		} else {
			c.Send(0, 9, []byte{byte(c.Rank())})
		}
	})
}

func TestBarrierOrdering(t *testing.T) {
	var before, after int32
	Run(8, func(c *Comm) {
		atomic.AddInt32(&before, 1)
		c.Barrier()
		if atomic.LoadInt32(&before) != 8 {
			t.Error("rank passed barrier before all arrived")
		}
		atomic.AddInt32(&after, 1)
	})
	if after != 8 {
		t.Fatal("not all ranks passed")
	}
}

func TestBcast(t *testing.T) {
	Run(5, func(c *Comm) {
		var data []byte
		if c.Rank() == 2 {
			data = []byte("payload")
		}
		got := c.Bcast(2, data)
		if string(got) != "payload" {
			t.Errorf("rank %d got %q", c.Rank(), got)
		}
	})
}

func TestGather(t *testing.T) {
	Run(4, func(c *Comm) {
		out := c.Gather(0, []byte{byte('a' + c.Rank())})
		if c.Rank() == 0 {
			for r := 0; r < 4; r++ {
				if len(out[r]) != 1 || out[r][0] != byte('a'+r) {
					t.Errorf("gathered[%d] = %q", r, out[r])
				}
			}
		} else if out != nil {
			t.Error("non-root received data")
		}
	})
}

func TestReduceMatchesSequential(t *testing.T) {
	const n = 7
	Run(n, func(c *Comm) {
		v := float64(c.Rank() + 1)
		sum := c.Reduce(0, Sum, v)
		if c.Rank() == 0 && sum != n*(n+1)/2 {
			t.Errorf("sum = %v", sum)
		}
		max := c.Allreduce(Max, v)
		if max != n {
			t.Errorf("rank %d allreduce max = %v", c.Rank(), max)
		}
		min := c.Allreduce(Min, v)
		if min != 1 {
			t.Errorf("rank %d allreduce min = %v", c.Rank(), min)
		}
	})
}

func TestReducePropertySumEqualsSequential(t *testing.T) {
	if err := quick.Check(func(vals []float64) bool {
		if len(vals) == 0 || len(vals) > 32 {
			return true
		}
		for _, v := range vals {
			if v != v { // NaN breaks == comparison, not the runtime
				return true
			}
		}
		want := 0.0
		for _, v := range vals {
			want += v
		}
		var got float64
		Run(len(vals), func(c *Comm) {
			s := c.Reduce(0, Sum, vals[c.Rank()])
			if c.Rank() == 0 {
				got = s
			}
		})
		// Addition order matches rank order, so results are identical,
		// not merely close.
		return got == want
	}, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestAlltoall(t *testing.T) {
	const n = 4
	Run(n, func(c *Comm) {
		bufs := make([][]byte, n)
		for r := range bufs {
			bufs[r] = []byte{byte(c.Rank()), byte(r)}
		}
		out := c.Alltoall(bufs)
		for r := 0; r < n; r++ {
			want := []byte{byte(r), byte(c.Rank())}
			if !bytes.Equal(out[r], want) {
				t.Errorf("rank %d from %d: got %v want %v", c.Rank(), r, out[r], want)
			}
		}
	})
}

func TestSplitNodeComms(t *testing.T) {
	// 12 ranks, 3 "nodes" of 4: split by node id, key by rank.
	Run(12, func(c *Comm) {
		node := c.Rank() / 4
		local := c.Split(node, c.Rank())
		if local.Size() != 4 {
			t.Errorf("local size = %d", local.Size())
		}
		if want := c.Rank() % 4; local.Rank() != want {
			t.Errorf("global %d local rank = %d want %d", c.Rank(), local.Rank(), want)
		}
		// The split communicator must work for collectives.
		sum := local.Allreduce(Sum, 1)
		if sum != 4 {
			t.Errorf("local allreduce = %v", sum)
		}
		// And for point-to-point.
		if local.Rank() == 0 {
			local.Send(1, 3, []byte{byte(node)})
		} else if local.Rank() == 1 {
			data, _ := local.Recv(0, 3)
			if data[0] != byte(node) {
				t.Errorf("wrong node payload")
			}
		}
	})
}

func TestSplitKeyOrdering(t *testing.T) {
	// Reverse keys: highest global rank gets local rank 0.
	Run(4, func(c *Comm) {
		local := c.Split(0, -c.Rank())
		if want := 3 - c.Rank(); local.Rank() != want {
			t.Errorf("global %d local = %d want %d", c.Rank(), local.Rank(), want)
		}
	})
}

func TestRepeatedCollectives(t *testing.T) {
	// Exercise slot reuse across many back-to-back collectives.
	Run(6, func(c *Comm) {
		for i := 0; i < 20; i++ {
			v := c.Allreduce(Sum, 1)
			if v != 6 {
				t.Errorf("round %d: %v", i, v)
				return
			}
		}
		for i := 0; i < 5; i++ {
			sub := c.Split(c.Rank()%2, c.Rank())
			if sub.Size() != 3 {
				t.Errorf("split round %d size %d", i, sub.Size())
				return
			}
		}
	})
}

func TestHaloExchangePattern(t *testing.T) {
	// The CM1 proxy's communication pattern: each rank exchanges a halo
	// with left/right neighbors in a ring.
	const n = 6
	Run(n, func(c *Comm) {
		left := (c.Rank() + n - 1) % n
		right := (c.Rank() + 1) % n
		var me [8]byte
		binary.LittleEndian.PutUint64(me[:], uint64(c.Rank()))
		c.Send(right, 100, me[:])
		c.Send(left, 101, me[:])
		fromLeft, _ := c.Recv(left, 100)
		fromRight, _ := c.Recv(right, 101)
		if binary.LittleEndian.Uint64(fromLeft) != uint64(left) {
			t.Errorf("rank %d left halo wrong", c.Rank())
		}
		if binary.LittleEndian.Uint64(fromRight) != uint64(right) {
			t.Errorf("rank %d right halo wrong", c.Rank())
		}
	})
}

func BenchmarkSendRecvLatency(b *testing.B) {
	Run(2, func(c *Comm) {
		msg := make([]byte, 64)
		if c.Rank() == 0 {
			for i := 0; i < b.N; i++ {
				c.Send(1, 1, msg)
				c.Recv(1, 2)
			}
		} else {
			for i := 0; i < b.N; i++ {
				c.Recv(0, 1)
				c.Send(0, 2, msg)
			}
		}
	})
}

func BenchmarkAllreduce(b *testing.B) {
	Run(8, func(c *Comm) {
		for i := 0; i < b.N; i++ {
			c.Allreduce(Sum, 1)
		}
	})
}
