package shm

import (
	"errors"
	"sync"
	"testing"
	"testing/quick"
)

func TestAllocFree(t *testing.T) {
	s, err := NewSegment(1 << 20)
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Alloc(1000)
	if err != nil {
		t.Fatal(err)
	}
	if b.Len() != 1000 || len(b.Bytes()) != 1000 {
		t.Fatalf("block length %d", b.Len())
	}
	if s.Allocated() < 1000 {
		t.Fatalf("allocated = %d", s.Allocated())
	}
	b.Free()
	if s.Allocated() != 0 {
		t.Fatalf("allocated after free = %d", s.Allocated())
	}
}

func TestAllocRejectsBadSizes(t *testing.T) {
	s, _ := NewSegment(1024)
	if _, err := s.Alloc(0); err == nil {
		t.Fatal("Alloc(0) succeeded")
	}
	if _, err := s.Alloc(-5); err == nil {
		t.Fatal("Alloc(-5) succeeded")
	}
	if _, err := NewSegment(0); err == nil {
		t.Fatal("NewSegment(0) succeeded")
	}
}

func TestErrNoSpace(t *testing.T) {
	s, _ := NewSegment(1024)
	if _, err := s.Alloc(2048); !errors.Is(err, ErrNoSpace) {
		t.Fatalf("want ErrNoSpace, got %v", err)
	}
}

func TestBlocksDoNotOverlap(t *testing.T) {
	s, _ := NewSegment(1 << 16)
	var blocks []*Block
	for {
		b, err := s.Alloc(100)
		if err != nil {
			break
		}
		blocks = append(blocks, b)
	}
	if len(blocks) < 2 {
		t.Fatal("too few blocks")
	}
	type span struct{ lo, hi int }
	var spans []span
	for _, b := range blocks {
		spans = append(spans, span{b.Offset(), b.Offset() + b.Len()})
	}
	for i := range spans {
		for j := i + 1; j < len(spans); j++ {
			if spans[i].lo < spans[j].hi && spans[j].lo < spans[i].hi {
				t.Fatalf("blocks %d and %d overlap: %+v %+v", i, j, spans[i], spans[j])
			}
		}
	}
}

func TestWriteVisibleThroughBlock(t *testing.T) {
	s, _ := NewSegment(4096)
	b, _ := s.Alloc(8)
	copy(b.Bytes(), []byte("damaris!"))
	if string(b.Bytes()) != "damaris!" {
		t.Fatal("data did not round-trip through the segment")
	}
}

func TestCoalescingRestoresFullCapacity(t *testing.T) {
	s, _ := NewSegment(1 << 12)
	full := s.LargestFree()
	var blocks []*Block
	for i := 0; i < 8; i++ {
		b, err := s.Alloc(256)
		if err != nil {
			t.Fatal(err)
		}
		blocks = append(blocks, b)
	}
	// Free in an interleaved order to exercise coalescing both ways.
	for _, i := range []int{1, 3, 5, 7, 0, 2, 4, 6} {
		blocks[i].Free()
	}
	if s.LargestFree() != full {
		t.Fatalf("largest free after all frees = %d, want %d", s.LargestFree(), full)
	}
}

func TestDoubleFreePanics(t *testing.T) {
	s, _ := NewSegment(1024)
	b, _ := s.Alloc(10)
	b.Free()
	defer func() {
		if recover() == nil {
			t.Fatal("double free did not panic")
		}
	}()
	b.Free()
}

func TestAllocWaitBlocksUntilFree(t *testing.T) {
	s, _ := NewSegment(1024)
	b1, _ := s.Alloc(1024)
	done := make(chan *Block)
	go func() {
		b2, err := s.AllocWait(512)
		if err != nil {
			t.Error(err)
		}
		done <- b2
	}()
	select {
	case <-done:
		t.Fatal("AllocWait returned while the segment was full")
	default:
	}
	b1.Free()
	b2 := <-done
	b2.Free()
}

func TestAllocWaitUnblocksOnClose(t *testing.T) {
	s, _ := NewSegment(1024)
	b, _ := s.Alloc(1024)
	errc := make(chan error)
	go func() {
		_, err := s.AllocWait(512)
		errc <- err
	}()
	s.Close()
	if err := <-errc; !errors.Is(err, ErrClosed) {
		t.Fatalf("want ErrClosed, got %v", err)
	}
	b.Free()
}

func TestPeakTracking(t *testing.T) {
	s, _ := NewSegment(4096)
	a, _ := s.Alloc(1024)
	b, _ := s.Alloc(1024)
	a.Free()
	b.Free()
	if s.Peak() < 2048 {
		t.Fatalf("peak = %d, want >= 2048", s.Peak())
	}
	if s.AllocCount() != 2 {
		t.Fatalf("alloc count = %d", s.AllocCount())
	}
}

// TestAllocatorConservation is the property test on the allocator's core
// invariant: after any sequence of allocs and frees, allocated + free
// bytes equals capacity and no two live blocks overlap.
func TestAllocatorConservation(t *testing.T) {
	if err := quick.Check(func(ops []uint16) bool {
		s, _ := NewSegment(1 << 14)
		live := map[*Block]bool{}
		for _, op := range ops {
			if op%3 != 0 && len(live) > 0 {
				// Free the first live block found (map order is fine here:
				// the invariant must hold under any order).
				for b := range live {
					b.Free()
					delete(live, b)
					break
				}
				continue
			}
			size := int(op%2000) + 1
			if b, err := s.Alloc(size); err == nil {
				live[b] = true
			}
		}
		// Overlap check.
		var spans [][2]int
		for b := range live {
			spans = append(spans, [2]int{b.Offset(), b.Offset() + b.Len()})
		}
		for i := range spans {
			for j := i + 1; j < len(spans); j++ {
				if spans[i][0] < spans[j][1] && spans[j][0] < spans[i][1] {
					return false
				}
			}
		}
		// Conservation: free everything, full capacity must coalesce back.
		for b := range live {
			b.Free()
		}
		return s.Allocated() == 0 && s.LargestFree() == s.Capacity()
	}, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentAllocFree(t *testing.T) {
	s, _ := NewSegment(1 << 20)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				b, err := s.Alloc(512)
				if err != nil {
					continue
				}
				// Write a signature and verify it: catches overlap races.
				sig := byte(id)
				for j := range b.Bytes() {
					b.Bytes()[j] = sig
				}
				for j := range b.Bytes() {
					if b.Bytes()[j] != sig {
						t.Errorf("corruption in goroutine %d", id)
						break
					}
				}
				b.Free()
			}
		}(g)
	}
	wg.Wait()
	if s.Allocated() != 0 {
		t.Fatalf("leak: %d bytes still allocated", s.Allocated())
	}
}

func TestQueueFIFO(t *testing.T) {
	q := NewQueue[int](4)
	for i := 0; i < 4; i++ {
		if !q.Send(i) {
			t.Fatal("send failed")
		}
	}
	for i := 0; i < 4; i++ {
		v, ok := q.Recv()
		if !ok || v != i {
			t.Fatalf("recv %d: got %d ok=%v", i, v, ok)
		}
	}
}

func TestQueueTrySendFull(t *testing.T) {
	q := NewQueue[string](1)
	if !q.TrySend("a") {
		t.Fatal("first TrySend failed")
	}
	if q.TrySend("b") {
		t.Fatal("TrySend succeeded on a full queue")
	}
	if q.Len() != 1 {
		t.Fatalf("len = %d", q.Len())
	}
}

func TestQueueBlockingSend(t *testing.T) {
	q := NewQueue[int](1)
	q.Send(1)
	sent := make(chan struct{})
	go func() {
		q.Send(2)
		close(sent)
	}()
	select {
	case <-sent:
		t.Fatal("Send returned on a full queue")
	default:
	}
	if v, _ := q.Recv(); v != 1 {
		t.Fatal("wrong head")
	}
	<-sent
	if v, _ := q.Recv(); v != 2 {
		t.Fatal("wrong second")
	}
}

func TestQueueCloseDrains(t *testing.T) {
	q := NewQueue[int](4)
	q.Send(1)
	q.Send(2)
	q.Close()
	if q.Send(3) {
		t.Fatal("send succeeded after close")
	}
	if v, ok := q.Recv(); !ok || v != 1 {
		t.Fatal("drain 1 failed")
	}
	if v, ok := q.Recv(); !ok || v != 2 {
		t.Fatal("drain 2 failed")
	}
	if _, ok := q.Recv(); ok {
		t.Fatal("Recv reported ok on closed empty queue")
	}
}

func TestQueueTryRecvEmpty(t *testing.T) {
	q := NewQueue[int](2)
	if _, ok := q.TryRecv(); ok {
		t.Fatal("TryRecv on empty queue reported ok")
	}
}

func TestQueueConcurrentProducersConsumers(t *testing.T) {
	q := NewQueue[int](8)
	const producers, perProducer = 4, 250
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(base int) {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				q.Send(base + i)
			}
		}(p * perProducer)
	}
	got := make(chan int, producers*perProducer)
	var cg sync.WaitGroup
	for c := 0; c < 3; c++ {
		cg.Add(1)
		go func() {
			defer cg.Done()
			for {
				v, ok := q.Recv()
				if !ok {
					return
				}
				got <- v
			}
		}()
	}
	wg.Wait()
	q.Close()
	cg.Wait()
	close(got)
	seen := map[int]bool{}
	for v := range got {
		if seen[v] {
			t.Fatalf("duplicate message %d", v)
		}
		seen[v] = true
	}
	if len(seen) != producers*perProducer {
		t.Fatalf("received %d of %d messages", len(seen), producers*perProducer)
	}
}

func BenchmarkAllocFree(b *testing.B) {
	s, _ := NewSegment(1 << 24)
	for i := 0; i < b.N; i++ {
		blk, err := s.Alloc(4096)
		if err != nil {
			b.Fatal(err)
		}
		blk.Free()
	}
}

func BenchmarkQueueSendRecv(b *testing.B) {
	q := NewQueue[int](1024)
	go func() {
		for i := 0; i < b.N; i++ {
			q.Send(i)
		}
	}()
	for i := 0; i < b.N; i++ {
		q.Recv()
	}
}
