// Package shm implements the node-local shared-memory substrate at the
// heart of the Damaris design (§III.A): a fixed-capacity segment in which
// simulation cores allocate blocks of data for the dedicated cores to
// consume in place (no extra copies), plus the bounded message queue used
// to send events between them.
//
// Within one OS process, Go memory shared between goroutines plays the
// role of the POSIX/SysV shared memory used by the original middleware;
// the allocator reproduces its capacity limits and blocking behaviour, in
// particular the "segment full" condition that drives the paper's §V.C
// skip-iteration policy.
package shm

import (
	"errors"
	"fmt"
	"sync"
)

// ErrNoSpace is returned by Alloc when the segment cannot satisfy the
// request. Callers implement their policy on top: block (AllocWait), fail,
// or drop the iteration as the paper does.
var ErrNoSpace = errors.New("shm: segment full")

// ErrClosed is returned when allocating from a closed segment.
var ErrClosed = errors.New("shm: segment closed")

// blockAlign is the allocation granularity; cache-line alignment avoids
// false sharing between a writer core and the dedicated reader core.
const blockAlign = 64

// Segment is a fixed-capacity shared-memory segment with a first-fit
// allocator. It is safe for concurrent use by any number of goroutines.
type Segment struct {
	mu       sync.Mutex
	freeCond *sync.Cond
	buf      []byte
	free     []region // sorted by offset, coalesced
	closed   bool

	allocated  int64
	allocCount int64
	peak       int64
}

type region struct {
	off, len int
}

// Block is an allocated region of a segment. The memory is owned by the
// allocating goroutine until handed to a consumer; Free returns it.
type Block struct {
	seg *Segment
	off int
	n   int // requested length
	cap int // aligned length actually reserved
}

// NewSegment creates a segment of the given capacity in bytes.
func NewSegment(capacity int) (*Segment, error) {
	if capacity <= 0 {
		return nil, fmt.Errorf("shm: non-positive capacity %d", capacity)
	}
	capacity = align(capacity)
	s := &Segment{
		buf:  make([]byte, capacity),
		free: []region{{0, capacity}},
	}
	s.freeCond = sync.NewCond(&s.mu)
	return s, nil
}

func align(n int) int { return (n + blockAlign - 1) &^ (blockAlign - 1) }

// Capacity returns the total segment size in bytes.
func (s *Segment) Capacity() int { return len(s.buf) }

// Allocated returns the number of bytes currently reserved.
func (s *Segment) Allocated() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.allocated
}

// Peak returns the high-water mark of reserved bytes.
func (s *Segment) Peak() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.peak
}

// AllocCount returns the number of successful allocations so far.
func (s *Segment) AllocCount() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.allocCount
}

// LargestFree returns the size of the largest contiguous free region.
func (s *Segment) LargestFree() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	max := 0
	for _, r := range s.free {
		if r.len > max {
			max = r.len
		}
	}
	return max
}

// Alloc reserves n bytes, or returns ErrNoSpace immediately if no
// contiguous region fits (the caller decides whether to wait, fail, or
// drop data).
func (s *Segment) Alloc(n int) (*Block, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.allocLocked(n)
}

// AllocWait reserves n bytes, blocking until space frees up. It returns
// ErrClosed if the segment is closed while waiting.
func (s *Segment) AllocWait(n int) (*Block, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		b, err := s.allocLocked(n)
		if err == nil || !errors.Is(err, ErrNoSpace) {
			return b, err
		}
		s.freeCond.Wait()
	}
}

func (s *Segment) allocLocked(n int) (*Block, error) {
	if s.closed {
		return nil, ErrClosed
	}
	if n <= 0 {
		return nil, fmt.Errorf("shm: non-positive allocation %d", n)
	}
	need := align(n)
	for i, r := range s.free {
		if r.len < need {
			continue
		}
		// First fit: carve from the front of the region.
		b := &Block{seg: s, off: r.off, n: n, cap: need}
		if r.len == need {
			s.free = append(s.free[:i], s.free[i+1:]...)
		} else {
			s.free[i] = region{r.off + need, r.len - need}
		}
		s.allocated += int64(need)
		s.allocCount++
		if s.allocated > s.peak {
			s.peak = s.allocated
		}
		return b, nil
	}
	return nil, fmt.Errorf("%w: need %d, largest free %d", ErrNoSpace, need, s.largestFreeLocked())
}

func (s *Segment) largestFreeLocked() int {
	max := 0
	for _, r := range s.free {
		if r.len > max {
			max = r.len
		}
	}
	return max
}

// Close marks the segment closed: subsequent allocations fail and blocked
// AllocWait callers are woken with ErrClosed. Existing blocks stay valid.
func (s *Segment) Close() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.closed = true
	s.freeCond.Broadcast()
}

// Bytes returns the block's memory. The slice aliases the segment buffer:
// this is exactly the zero-copy sharing the Damaris design is built on.
func (b *Block) Bytes() []byte { return b.seg.buf[b.off : b.off+b.n] }

// Len returns the requested block length.
func (b *Block) Len() int { return b.n }

// Offset returns the block's offset inside the segment (diagnostics).
func (b *Block) Offset() int { return b.off }

// Free returns the block's memory to the segment and wakes blocked
// allocators. Freeing a block twice panics: it indicates an ownership bug.
func (b *Block) Free() {
	s := b.seg
	if s == nil {
		panic("shm: double free")
	}
	b.seg = nil
	s.mu.Lock()
	defer s.mu.Unlock()
	s.allocated -= int64(b.cap)
	s.insertFreeLocked(region{b.off, b.cap})
	s.freeCond.Broadcast()
}

// insertFreeLocked inserts r into the sorted free list, coalescing with
// adjacent regions.
func (s *Segment) insertFreeLocked(r region) {
	// Binary search for the insertion point.
	lo, hi := 0, len(s.free)
	for lo < hi {
		mid := (lo + hi) / 2
		if s.free[mid].off < r.off {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	s.free = append(s.free, region{})
	copy(s.free[lo+1:], s.free[lo:])
	s.free[lo] = r
	// Coalesce with successor, then predecessor.
	if lo+1 < len(s.free) && r.off+r.len == s.free[lo+1].off {
		s.free[lo].len += s.free[lo+1].len
		s.free = append(s.free[:lo+1], s.free[lo+2:]...)
	}
	if lo > 0 && s.free[lo-1].off+s.free[lo-1].len == s.free[lo].off {
		s.free[lo-1].len += s.free[lo].len
		s.free = append(s.free[:lo], s.free[lo+1:]...)
	}
}
