package shm

import "sync"

// Queue is the bounded message queue between simulation cores and the
// dedicated cores (§III.B: "a shared message queue is used for the
// simulation processes to send events to the dedicated cores"). It is a
// multi-producer, multi-consumer FIFO with a fixed capacity, mirroring a
// POSIX message queue.
type Queue[T any] struct {
	mu       sync.Mutex
	notFull  *sync.Cond
	notEmpty *sync.Cond
	buf      []T
	head     int
	count    int
	closed   bool
}

// NewQueue creates a queue holding at most capacity messages.
func NewQueue[T any](capacity int) *Queue[T] {
	if capacity <= 0 {
		panic("shm: queue capacity must be positive")
	}
	q := &Queue[T]{buf: make([]T, capacity)}
	q.notFull = sync.NewCond(&q.mu)
	q.notEmpty = sync.NewCond(&q.mu)
	return q
}

// Cap returns the queue capacity.
func (q *Queue[T]) Cap() int { return len(q.buf) }

// Len returns the number of queued messages.
func (q *Queue[T]) Len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.count
}

// Send enqueues v, blocking while the queue is full. It reports false if
// the queue was closed.
func (q *Queue[T]) Send(v T) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	for q.count == len(q.buf) && !q.closed {
		q.notFull.Wait()
	}
	if q.closed {
		return false
	}
	q.buf[(q.head+q.count)%len(q.buf)] = v
	q.count++
	q.notEmpty.Signal()
	return true
}

// TrySend enqueues v without blocking; it reports false when the queue is
// full or closed.
func (q *Queue[T]) TrySend(v T) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed || q.count == len(q.buf) {
		return false
	}
	q.buf[(q.head+q.count)%len(q.buf)] = v
	q.count++
	q.notEmpty.Signal()
	return true
}

// Recv dequeues the oldest message, blocking while the queue is empty.
// It reports false when the queue is closed and drained.
func (q *Queue[T]) Recv() (T, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for q.count == 0 && !q.closed {
		q.notEmpty.Wait()
	}
	if q.count == 0 {
		var zero T
		return zero, false
	}
	v := q.buf[q.head]
	var zero T
	q.buf[q.head] = zero // release references for the GC
	q.head = (q.head + 1) % len(q.buf)
	q.count--
	q.notFull.Signal()
	return v, true
}

// TryRecv dequeues without blocking; ok is false when nothing is queued.
func (q *Queue[T]) TryRecv() (v T, ok bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.count == 0 {
		return v, false
	}
	v = q.buf[q.head]
	var zero T
	q.buf[q.head] = zero
	q.head = (q.head + 1) % len(q.buf)
	q.count--
	q.notFull.Signal()
	return v, true
}

// Close marks the queue closed: senders fail, receivers drain what is
// left and then observe closure.
func (q *Queue[T]) Close() {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.closed = true
	q.notFull.Broadcast()
	q.notEmpty.Broadcast()
}
