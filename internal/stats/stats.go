// Package stats provides the summary statistics and table formatting used
// by the experiment harness to report results in the shape of the paper's
// evaluation section.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Summary holds the descriptive statistics of a sample.
type Summary struct {
	N      int
	Mean   float64
	Std    float64
	Min    float64
	Max    float64
	Median float64
	P95    float64
	P99    float64
}

// CoV returns the coefficient of variation (std/mean), or 0 for an empty or
// zero-mean sample.
func (s Summary) CoV() float64 {
	if s.Mean == 0 {
		return 0
	}
	return s.Std / s.Mean
}

// Spread returns max/min, the paper's "gap between the slowest and the
// fastest processes". It returns +Inf when min is zero but max is not.
func (s Summary) Spread() float64 {
	if s.Min == 0 {
		if s.Max == 0 {
			return 1
		}
		return math.Inf(1)
	}
	return s.Max / s.Min
}

// Summarize computes the summary statistics of xs. An empty sample yields a
// zero Summary.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	var sum, sumSq float64
	for _, x := range sorted {
		sum += x
		sumSq += x * x
	}
	n := float64(len(sorted))
	mean := sum / n
	variance := sumSq/n - mean*mean
	if variance < 0 { // guard against rounding
		variance = 0
	}
	return Summary{
		N:      len(sorted),
		Mean:   mean,
		Std:    math.Sqrt(variance),
		Min:    sorted[0],
		Max:    sorted[len(sorted)-1],
		Median: Percentile(sorted, 50),
		P95:    Percentile(sorted, 95),
		P99:    Percentile(sorted, 99),
	}
}

// Percentile returns the p-th percentile (0..100) of an ascending-sorted
// sample using linear interpolation between closest ranks.
func Percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Median returns the 50th percentile of xs (interpolated, 0 if
// empty) without assuming the input is sorted. Prefer it over Mean
// when a series is exposed to the PFS model's heavy-tailed straggler
// episodes: one Pareto draw can move a mean by an order of magnitude
// while the median still ranks the underlying configurations.
func Median(xs []float64) float64 {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return Percentile(s, 50)
}

// Mean returns the arithmetic mean of xs, 0 if empty.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// StdDev returns the population standard deviation of xs, 0 if fewer
// than two samples.
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	sum := 0.0
	for _, x := range xs {
		d := x - m
		sum += d * d
	}
	return math.Sqrt(sum / float64(len(xs)))
}

// Max returns the maximum of xs, 0 if empty.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Min returns the minimum of xs, 0 if empty.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Table accumulates rows and renders them with aligned columns, in the
// style of the tables the experiment harness prints.
type Table struct {
	Title   string
	headers []string
	rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, headers: headers}
}

// AddRow appends a row; each cell is rendered with %v.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = FormatFloat(v)
		case string:
			row[i] = v
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

// NumRows returns the number of data rows added so far.
func (t *Table) NumRows() int { return len(t.rows) }

// String renders the table with padded columns.
func (t *Table) String() string {
	widths := make([]int, len(t.headers))
	for i, h := range t.headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.headers)
	sep := make([]string, len(t.headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}

// CSV renders the table as comma-separated values (header first).
func (t *Table) CSV() string {
	var b strings.Builder
	b.WriteString(strings.Join(t.headers, ","))
	b.WriteByte('\n')
	for _, row := range t.rows {
		b.WriteString(strings.Join(row, ","))
		b.WriteByte('\n')
	}
	return b.String()
}

// FormatFloat renders a float compactly: three significant decimals for
// small magnitudes, fewer for large ones.
func FormatFloat(v float64) string {
	switch a := math.Abs(v); {
	case v == math.Trunc(v) && a < 1e15:
		return fmt.Sprintf("%.0f", v)
	case a >= 1000:
		return fmt.Sprintf("%.0f", v)
	case a >= 10:
		return fmt.Sprintf("%.1f", v)
	case a >= 0.01:
		return fmt.Sprintf("%.3f", v)
	default:
		return fmt.Sprintf("%.2e", v)
	}
}

// GB formats a byte count in gigabytes (base 10⁹, as storage vendors and
// the paper use).
func GB(bytes float64) float64 { return bytes / 1e9 }

// GBps formats a throughput in GB/s given bytes and seconds.
func GBps(bytes, seconds float64) float64 {
	if seconds == 0 {
		return 0
	}
	return bytes / 1e9 / seconds
}
