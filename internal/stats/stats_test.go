package stats

import (
	"math"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestSummarizeBasic(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || s.Mean != 3 || s.Min != 1 || s.Max != 5 || s.Median != 3 {
		t.Fatalf("unexpected summary: %+v", s)
	}
	if !almostEqual(s.Std, math.Sqrt(2), 1e-12) {
		t.Fatalf("std = %v, want sqrt(2)", s.Std)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.N != 0 || s.Mean != 0 || s.Spread() != 1 {
		t.Fatalf("empty summary: %+v", s)
	}
}

func TestSummarizeDoesNotMutateInput(t *testing.T) {
	xs := []float64{5, 1, 3}
	Summarize(xs)
	if xs[0] != 5 || xs[1] != 1 || xs[2] != 3 {
		t.Fatal("Summarize mutated its input")
	}
}

func TestSpread(t *testing.T) {
	s := Summarize([]float64{0.5, 5})
	if s.Spread() != 10 {
		t.Fatalf("spread = %v, want 10", s.Spread())
	}
	if !math.IsInf(Summarize([]float64{0, 1}).Spread(), 1) {
		t.Fatal("spread with zero min should be +Inf")
	}
}

func TestCoV(t *testing.T) {
	s := Summarize([]float64{2, 2, 2, 2})
	if s.CoV() != 0 {
		t.Fatalf("CoV of constant sample = %v", s.CoV())
	}
}

func TestPercentileInterpolation(t *testing.T) {
	sorted := []float64{10, 20, 30, 40}
	if p := Percentile(sorted, 50); p != 25 {
		t.Fatalf("P50 = %v, want 25", p)
	}
	if p := Percentile(sorted, 0); p != 10 {
		t.Fatalf("P0 = %v, want 10", p)
	}
	if p := Percentile(sorted, 100); p != 40 {
		t.Fatalf("P100 = %v, want 40", p)
	}
}

func TestPercentileProperties(t *testing.T) {
	if err := quick.Check(func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				xs = append(xs, v)
			}
		}
		if len(xs) == 0 {
			return true
		}
		sort.Float64s(xs)
		p25 := Percentile(xs, 25)
		p75 := Percentile(xs, 75)
		return p25 <= p75 && p25 >= xs[0] && p75 <= xs[len(xs)-1]
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMinMaxMean(t *testing.T) {
	xs := []float64{3, -1, 7}
	if Min(xs) != -1 || Max(xs) != 7 || Mean(xs) != 3 {
		t.Fatalf("min/max/mean = %v/%v/%v", Min(xs), Max(xs), Mean(xs))
	}
	if Min(nil) != 0 || Max(nil) != 0 || Mean(nil) != 0 {
		t.Fatal("empty-slice helpers should return 0")
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("T", "approach", "GB/s")
	tb.AddRow("collective", 0.5)
	tb.AddRow("damaris", 10.0)
	out := tb.String()
	for _, want := range []string{"T", "approach", "collective", "damaris", "0.500", "10"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table output missing %q:\n%s", want, out)
		}
	}
	if tb.NumRows() != 2 {
		t.Fatalf("NumRows = %d", tb.NumRows())
	}
}

func TestTableCSV(t *testing.T) {
	tb := NewTable("", "a", "b")
	tb.AddRow(1, 2)
	want := "a,b\n1,2\n"
	if got := tb.CSV(); got != want {
		t.Fatalf("CSV = %q, want %q", got, want)
	}
}

func TestFormatFloat(t *testing.T) {
	cases := map[float64]string{
		12345:   "12345",
		12345.6: "12346",
		12.34:   "12.3",
		0.5:     "0.500",
		0.0001:  "1.00e-04",
	}
	for in, want := range cases {
		if got := FormatFloat(in); got != want {
			t.Errorf("FormatFloat(%v) = %q, want %q", in, got, want)
		}
	}
}

func TestGBps(t *testing.T) {
	if g := GBps(10e9, 2); g != 5 {
		t.Fatalf("GBps = %v", g)
	}
	if g := GBps(1, 0); g != 0 {
		t.Fatalf("GBps with zero time = %v", g)
	}
}
