// Package nek is a proxy for the Nek5000 CFD solver used in the paper's
// in-situ evaluation (§V.C): a 3-D lid-driven cavity flow advanced by
// explicit viscous diffusion plus a Chorin-style projection step (Jacobi
// pressure solve, velocity correction). It produces the velocity and
// pressure fields the visualization pipeline consumes.
package nek

import (
	"fmt"

	"repro/internal/insitu"
)

// Params configures the cavity.
type Params struct {
	// N is the cubic grid edge length.
	N int
	// Nu is the kinematic viscosity, DT the time step.
	Nu, DT float64
	// LidSpeed is the tangential velocity of the moving (top) wall.
	LidSpeed float64
	// PressureIters is the number of Jacobi sweeps per step.
	PressureIters int
}

// DefaultParams returns a stable small cavity.
func DefaultParams() Params {
	return Params{N: 16, Nu: 0.05, DT: 0.05, LidSpeed: 1, PressureIters: 20}
}

// Validate checks stability constraints.
func (p Params) Validate() error {
	if p.N < 4 {
		return fmt.Errorf("nek: grid %d too small", p.N)
	}
	if p.DT <= 0 || p.Nu < 0 {
		return fmt.Errorf("nek: non-positive DT or negative Nu")
	}
	if 6*p.Nu*p.DT >= 1 {
		return fmt.Errorf("nek: diffusion number %v unstable", 6*p.Nu*p.DT)
	}
	if p.PressureIters < 1 {
		return fmt.Errorf("nek: need at least one pressure iteration")
	}
	return nil
}

// Solver holds the cavity state.
type Solver struct {
	P          Params
	u, v, w, p insitu.Field
	scratch    []float64
	step       int
}

// New initializes a quiescent cavity.
func New(p Params) (*Solver, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	n := p.N
	return &Solver{
		P:       p,
		u:       insitu.NewField("u", n, n, n),
		v:       insitu.NewField("v", n, n, n),
		w:       insitu.NewField("w", n, n, n),
		p:       insitu.NewField("p", n, n, n),
		scratch: make([]float64, n*n*n),
	}, nil
}

// Step advances the flow: lid BC, viscous diffusion, pressure
// projection.
func (s *Solver) Step() {
	s.applyLid()
	s.diffuse(&s.u)
	s.diffuse(&s.v)
	s.diffuse(&s.w)
	s.project()
	s.step++
}

// Iteration returns the completed step count.
func (s *Solver) Iteration() int { return s.step }

// applyLid drives the top plane (k = N-1) tangentially and pins the
// other walls to zero.
func (s *Solver) applyLid() {
	n := s.P.N
	for j := 0; j < n; j++ {
		for i := 0; i < n; i++ {
			s.u.Set(n-1, j, i, s.P.LidSpeed)
			s.u.Set(0, j, i, 0)
			s.v.Set(n-1, j, i, 0)
			s.v.Set(0, j, i, 0)
			s.w.Set(n-1, j, i, 0)
			s.w.Set(0, j, i, 0)
		}
	}
}

// clampAt reads f with walls clamped (no-slip boundaries).
func clampAt(f *insitu.Field, n, k, j, i int) float64 {
	if k < 0 || k >= n || j < 0 || j >= n || i < 0 || i >= n {
		return 0
	}
	return f.At(k, j, i)
}

// diffuse applies one explicit viscous step to a velocity component.
func (s *Solver) diffuse(f *insitu.Field) {
	n := s.P.N
	c := s.P.Nu * s.P.DT
	for k := 0; k < n; k++ {
		for j := 0; j < n; j++ {
			for i := 0; i < n; i++ {
				v := f.At(k, j, i)
				lap := clampAt(f, n, k-1, j, i) + clampAt(f, n, k+1, j, i) +
					clampAt(f, n, k, j-1, i) + clampAt(f, n, k, j+1, i) +
					clampAt(f, n, k, j, i-1) + clampAt(f, n, k, j, i+1) - 6*v
				s.scratch[(k*n+j)*n+i] = v + c*lap
			}
		}
	}
	copy(f.Data, s.scratch)
}

// divergence computes ∇·u with central differences into dst.
func (s *Solver) divergence(dst []float64) {
	n := s.P.N
	for k := 0; k < n; k++ {
		for j := 0; j < n; j++ {
			for i := 0; i < n; i++ {
				du := clampAt(&s.u, n, k, j, i+1) - clampAt(&s.u, n, k, j, i-1)
				dv := clampAt(&s.v, n, k, j+1, i) - clampAt(&s.v, n, k, j-1, i)
				dw := clampAt(&s.w, n, k+1, j, i) - clampAt(&s.w, n, k-1, j, i)
				dst[(k*n+j)*n+i] = 0.5 * (du + dv + dw)
			}
		}
	}
}

// project solves ∇²p = ∇·u by Jacobi iteration and corrects the
// velocity, making the field (approximately) divergence free.
func (s *Solver) project() {
	n := s.P.N
	div := make([]float64, n*n*n)
	s.divergence(div)
	for it := 0; it < s.P.PressureIters; it++ {
		for k := 0; k < n; k++ {
			for j := 0; j < n; j++ {
				for i := 0; i < n; i++ {
					sum := clampAt(&s.p, n, k-1, j, i) + clampAt(&s.p, n, k+1, j, i) +
						clampAt(&s.p, n, k, j-1, i) + clampAt(&s.p, n, k, j+1, i) +
						clampAt(&s.p, n, k, j, i-1) + clampAt(&s.p, n, k, j, i+1)
					s.scratch[(k*n+j)*n+i] = (sum - div[(k*n+j)*n+i]) / 6
				}
			}
		}
		copy(s.p.Data, s.scratch)
	}
	for k := 0; k < n; k++ {
		for j := 0; j < n; j++ {
			for i := 0; i < n; i++ {
				idx := (k*n+j)*n + i
				s.u.Data[idx] -= 0.5 * (clampAt(&s.p, n, k, j, i+1) - clampAt(&s.p, n, k, j, i-1))
				s.v.Data[idx] -= 0.5 * (clampAt(&s.p, n, k, j+1, i) - clampAt(&s.p, n, k, j-1, i))
				s.w.Data[idx] -= 0.5 * (clampAt(&s.p, n, k+1, j, i) - clampAt(&s.p, n, k-1, j, i))
			}
		}
	}
}

// Fields returns the output variables in a stable order.
func (s *Solver) Fields() []insitu.Field {
	return []insitu.Field{s.u, s.v, s.w, s.p}
}

// KineticEnergy returns ½ Σ |u|².
func (s *Solver) KineticEnergy() float64 {
	e := 0.0
	for idx := range s.u.Data {
		e += s.u.Data[idx]*s.u.Data[idx] + s.v.Data[idx]*s.v.Data[idx] + s.w.Data[idx]*s.w.Data[idx]
	}
	return e / 2
}

// DivergenceNorm returns the L2 norm of ∇·u (projection quality).
func (s *Solver) DivergenceNorm() float64 {
	n := s.P.N
	div := make([]float64, n*n*n)
	s.divergence(div)
	sum := 0.0
	for _, d := range div {
		sum += d * d
	}
	return sum
}
