package nek

import (
	"math"
	"testing"
)

func TestValidate(t *testing.T) {
	if err := DefaultParams().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := DefaultParams()
	bad.Nu, bad.DT = 10, 1
	if err := bad.Validate(); err == nil {
		t.Fatal("unstable params accepted")
	}
	small := DefaultParams()
	small.N = 2
	if err := small.Validate(); err == nil {
		t.Fatal("tiny grid accepted")
	}
}

func TestLidDrivesFlow(t *testing.T) {
	s, err := New(DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if s.KineticEnergy() != 0 {
		t.Fatal("cavity not quiescent at start")
	}
	for i := 0; i < 10; i++ {
		s.Step()
	}
	if s.KineticEnergy() <= 0 {
		t.Fatal("lid did not inject energy")
	}
	// The flow is strongest near the lid and weaker near the bottom.
	n := s.P.N
	topSpeed := math.Abs(s.u.At(n-2, n/2, n/2))
	bottomSpeed := math.Abs(s.u.At(1, n/2, n/2))
	if topSpeed <= bottomSpeed {
		t.Fatalf("no vertical shear: top %v bottom %v", topSpeed, bottomSpeed)
	}
}

func TestEnergyBounded(t *testing.T) {
	s, _ := New(DefaultParams())
	var prev float64
	for i := 0; i < 100; i++ {
		s.Step()
		e := s.KineticEnergy()
		if math.IsNaN(e) || math.IsInf(e, 0) {
			t.Fatalf("solver blew up at step %d", i)
		}
		prev = e
	}
	// The lid supplies bounded energy: far below the all-cells-at-lid-speed bound.
	n := float64(s.P.N)
	if prev > n*n*n {
		t.Fatalf("energy %v implausibly high", prev)
	}
	if s.Iteration() != 100 {
		t.Fatalf("iteration = %d", s.Iteration())
	}
}

func TestProjectionReducesDivergence(t *testing.T) {
	// With more pressure iterations the projected field must be closer
	// to divergence-free.
	norm := func(iters int) float64 {
		p := DefaultParams()
		p.PressureIters = iters
		s, _ := New(p)
		for i := 0; i < 20; i++ {
			s.Step()
		}
		return s.DivergenceNorm()
	}
	loose, tight := norm(2), norm(40)
	if tight >= loose {
		t.Fatalf("divergence with 40 iters (%v) not below 2 iters (%v)", tight, loose)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() float64 {
		s, _ := New(DefaultParams())
		for i := 0; i < 30; i++ {
			s.Step()
		}
		return s.KineticEnergy()
	}
	if run() != run() {
		t.Fatal("solver not deterministic")
	}
}

func TestFields(t *testing.T) {
	s, _ := New(DefaultParams())
	fs := s.Fields()
	if len(fs) != 4 || fs[0].Name != "u" || fs[3].Name != "p" {
		t.Fatalf("fields = %v", fs)
	}
	for _, f := range fs {
		if err := f.Validate(); err != nil {
			t.Fatal(err)
		}
	}
}

func BenchmarkStep(b *testing.B) {
	p := DefaultParams()
	p.N = 24
	s, _ := New(p)
	for i := 0; i < b.N; i++ {
		s.Step()
	}
}
