package workload

import (
	"bytes"
	"testing"

	"repro/internal/rng"
)

// TestInterleavingByteIdentical is the determinism property test: for
// every scenario, running the generator's subsystem passes in any
// order produces byte-identical traces, because each pass draws only
// from its own partitioned stream.
func TestInterleavingByteIdentical(t *testing.T) {
	perms := rng.New(1, 0)
	for _, sc := range Scenarios() {
		spec := Spec{Scenario: sc, Seed: 2013, Iterations: 12, Nodes: 32}
		want, err := Generate(spec)
		if err != nil {
			t.Fatalf("%s: %v", sc, err)
		}
		wantB := want.Encode()
		for trial := 0; trial < 8; trial++ {
			perm := perms.Perm(len(passes()))
			got, err := generate(spec, perm)
			if err != nil {
				t.Fatalf("%s perm %v: %v", sc, perm, err)
			}
			if !bytes.Equal(got.Encode(), wantB) {
				t.Fatalf("%s: pass order %v changed the trace bytes", sc, perm)
			}
		}
	}
}

func TestSeedDeterminism(t *testing.T) {
	for _, sc := range Scenarios() {
		a, err := Generate(Spec{Scenario: sc, Seed: 7})
		if err != nil {
			t.Fatal(err)
		}
		b, _ := Generate(Spec{Scenario: sc, Seed: 7})
		if a.Fingerprint() != b.Fingerprint() {
			t.Fatalf("%s: same seed produced different traces", sc)
		}
		c, _ := Generate(Spec{Scenario: sc, Seed: 8})
		if sc != Steady && sc != WeakLadder && sc != StrongLadder {
			// Purely structural scenarios draw nothing, so only the
			// stochastic ones must diverge under a new seed.
			if a.Fingerprint() == c.Fingerprint() {
				t.Fatalf("%s: different seeds produced identical traces", sc)
			}
		}
	}
}

func TestScenarioShapes(t *testing.T) {
	spec := Spec{Seed: 3, Iterations: 16, Nodes: 32}

	spec.Scenario = Steady
	st, _ := Generate(spec)
	for i, it := range st.Iters {
		if it.BytesPerCore != st.Iters[0].BytesPerCore || it.ComputeTime != st.Iters[0].ComputeTime {
			t.Fatalf("steady: iteration %d deviates from the base", i)
		}
	}
	if st.HasPlatformShift() {
		t.Fatal("steady: unexpected platform shifts")
	}

	spec.Scenario = AMR
	amr, _ := Generate(spec)
	last := amr.Iters[len(amr.Iters)-1].BytesPerCore
	if last <= amr.Iters[0].BytesPerCore {
		t.Fatal("amr: no growth over the run")
	}
	if max := amr.MaxBytesPerCore(); max > 8*spec.withDefaults().BaseBytesPerCore+1 {
		t.Fatalf("amr: growth %g exceeds the 8x cap", max)
	}

	spec.Scenario = ParticleMix
	pm, _ := Generate(spec)
	varied := false
	for _, it := range pm.Iters {
		if it.ParticleFraction <= 0 || it.ParticleFraction >= 1 {
			t.Fatalf("particle-mix: fraction %g out of (0,1)", it.ParticleFraction)
		}
		if it.VarsPerCore != pm.Iters[0].VarsPerCore {
			varied = true
		}
	}
	if !varied {
		t.Fatal("particle-mix: variable counts never varied")
	}

	spec.Scenario = NICStep
	ns, _ := Generate(spec)
	if ns.NICFactorAt(0) != 1 {
		t.Fatal("nic-step: shifted before the run started")
	}
	if f := ns.NICFactorAt(ns.Iterations() - 1); f >= 1 || f <= 0 {
		t.Fatalf("nic-step: final NIC factor %g not a drop", f)
	}
	if ns.PFSFactorAt(ns.Iterations()-1) != 1 {
		t.Fatal("nic-step: PFS factor moved")
	}

	spec.Scenario = PFSStep
	ps, _ := Generate(spec)
	if f := ps.PFSFactorAt(ps.Iterations() - 1); f >= 1 || f <= 0 {
		t.Fatalf("pfs-step: final PFS factor %g not a drop", f)
	}

	spec.Scenario = NodeChurn
	nc, _ := Generate(spec)
	losses := nc.NodeLosses()
	if len(losses) != spec.Nodes/8 {
		t.Fatalf("node-churn: %d losses, want %d", len(losses), spec.Nodes/8)
	}
	seen := map[int]bool{}
	for _, l := range losses {
		if l.Node < 0 || l.Node >= spec.Nodes || seen[l.Node] {
			t.Fatalf("node-churn: bad or duplicate victim %d", l.Node)
		}
		seen[l.Node] = true
		if l.Iteration < 1 {
			t.Fatal("node-churn: loss at iteration 0 would kill the run before it starts")
		}
	}

	spec.Scenario = WeakLadder
	wl, _ := Generate(spec)
	if len(wl.Ladder) != 3 || wl.Ladder[0] != spec.Nodes || wl.Ladder[2] != 4*spec.Nodes {
		t.Fatalf("weak-ladder: ladder %v", wl.Ladder)
	}
	if wl.LadderBytesScale(wl.Ladder[2]) != 1 {
		t.Fatal("weak-ladder: per-core bytes should not scale")
	}

	spec.Scenario = StrongLadder
	sl, _ := Generate(spec)
	if got := sl.LadderBytesScale(sl.Ladder[2]); got != 0.25 {
		t.Fatalf("strong-ladder: scale at 4x nodes = %g, want 0.25", got)
	}
}

func TestGenerateRejectsBadSpecs(t *testing.T) {
	if _, err := Generate(Spec{Scenario: "tornado"}); err == nil {
		t.Fatal("unknown scenario accepted")
	}
	if _, err := Generate(Spec{Scenario: Steady, Iterations: -1}); err == nil {
		t.Fatal("negative iterations accepted")
	}
	if _, err := Generate(Spec{Scenario: Steady, Nodes: -2}); err == nil {
		t.Fatal("negative nodes accepted")
	}
}

func TestEncodeDistinguishesTraces(t *testing.T) {
	a, _ := Generate(Spec{Scenario: Bursty, Seed: 1})
	b, _ := Generate(Spec{Scenario: Bursty, Seed: 2})
	if bytes.Equal(a.Encode(), b.Encode()) {
		t.Fatal("different seeds encoded identically")
	}
	if a.Fingerprint() == b.Fingerprint() {
		t.Fatal("different traces fingerprinted identically")
	}
}
