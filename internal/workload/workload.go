// Package workload generates deterministic simulation scenarios: the
// per-iteration output shape (bytes, cadence, dataset mix) and the
// mid-run platform shifts (NIC/PFS bandwidth steps, node loss/rejoin)
// an experiment drives a Damaris run with.
//
// Determinism is the whole design. A scenario is a pure function of a
// Spec: every generator pass draws only from its own subsystem stream
// of a partitioned RNG (rng.Partition / rng.SimulationKey) and writes
// only its own trace fields, so the passes may run in any order — or
// concurrently — and the resulting Trace is byte-identical for a given
// seed. Trace.Encode serializes that claim into testable bytes; the
// contract is documented in docs/SCENARIOS.md.
package workload

import (
	"fmt"
	"sort"

	"repro/internal/rng"
)

// Scenario names understood by Generate. Each names one family of
// per-iteration shapes and platform events; docs/SCENARIOS.md is the
// narrative vocabulary.
const (
	// Steady is the constant baseline: every iteration writes the same
	// bytes after the same compute time.
	Steady = "steady"
	// Bursty alternates quiet stretches with output bursts: short
	// compute gaps and size spikes clustered together.
	Bursty = "bursty"
	// AMR grows per-iteration output as refinement events multiply the
	// mesh, capped at 8x the base size.
	AMR = "amr"
	// ParticleMix varies the particle-vs-grid share of each iteration's
	// bytes, shifting variable counts and sizes with it.
	ParticleMix = "particle-mix"
	// WeakLadder sweeps node counts with constant per-core output (the
	// weak-scaling ladder of Huebl et al., arXiv:1706.00522).
	WeakLadder = "weak-ladder"
	// StrongLadder sweeps node counts with constant total output, so
	// per-core bytes shrink as the machine grows.
	StrongLadder = "strong-ladder"
	// NICStep drops interconnect bandwidth by a drawn factor mid-run —
	// the platform shift elastic adaptation must react to.
	NICStep = "nic-step"
	// PFSStep drops parallel-file-system bandwidth by a drawn factor
	// mid-run.
	PFSStep = "pfs-step"
	// NodeChurn kills a drawn subset of nodes mid-run and schedules one
	// rejoin event (rejoin is an adaptation trigger, not a revival —
	// see docs/SCENARIOS.md).
	NodeChurn = "node-churn"
)

// Scenarios lists every scenario name Generate accepts, in the order
// E11 sweeps them.
func Scenarios() []string {
	return []string{Steady, Bursty, AMR, ParticleMix, WeakLadder,
		StrongLadder, NICStep, PFSStep, NodeChurn}
}

// ValidateScenario rejects unknown scenario names before a run starts.
func ValidateScenario(name string) error {
	for _, s := range Scenarios() {
		if s == name {
			return nil
		}
	}
	return fmt.Errorf("workload: unknown scenario %q (have %v)", name, Scenarios())
}

// Spec is the input to Generate: which scenario, from which seed, over
// how many iterations and nodes, around which base workload. The zero
// values of the base fields default to the CM1-like shape the paper's
// experiments use.
type Spec struct {
	// Scenario is one of Scenarios().
	Scenario string
	// Seed is the root seed; equal specs generate byte-identical traces.
	Seed uint64
	// Iterations is the trace length (default 8).
	Iterations int
	// Nodes is the node count the trace targets — node-churn events
	// draw victims from it and ladders start from it (default 16).
	Nodes int
	// BaseBytesPerCore is the unperturbed per-core output per iteration
	// in bytes (default 38e6, the CM1 checkpoint shape).
	BaseBytesPerCore float64
	// BaseComputeTime is the unperturbed compute phase in seconds
	// (default 300).
	BaseComputeTime float64
	// BaseVarsPerCore is the unperturbed variable count per core
	// (default 20).
	BaseVarsPerCore int
}

func (s Spec) withDefaults() Spec {
	if s.Iterations == 0 {
		s.Iterations = 8
	}
	if s.Nodes == 0 {
		s.Nodes = 16
	}
	if s.BaseBytesPerCore == 0 {
		s.BaseBytesPerCore = 38e6
	}
	if s.BaseComputeTime == 0 {
		s.BaseComputeTime = 300
	}
	if s.BaseVarsPerCore == 0 {
		s.BaseVarsPerCore = 20
	}
	return s
}

// pass is one generator subsystem: it draws only from its own stream
// and writes only its own trace fields, so passes commute.
type pass struct {
	subsystem string
	run       func(s *rng.Stream, spec Spec, tr *Trace)
}

// passes returns every generator subsystem. The slice order is the
// default execution order; correctness must not depend on it (the
// interleaving property test permutes it).
func passes() []pass {
	return []pass{
		{"cadence", cadencePass},
		{"size", sizePass},
		{"mix", mixPass},
		{"platform", platformPass},
		{"ladder", ladderPass},
	}
}

// Generate produces the deterministic trace for spec. Equal specs
// yield byte-identical traces (compare with Trace.Encode or
// Trace.Fingerprint) regardless of how the generator's subsystem
// passes interleave.
func Generate(spec Spec) (*Trace, error) {
	return generate(spec, nil)
}

// generate runs the passes in the order given by perm (identity when
// nil) — the hook the interleaving property test uses to prove pass
// order is irrelevant.
func generate(spec Spec, perm []int) (*Trace, error) {
	spec = spec.withDefaults()
	if err := ValidateScenario(spec.Scenario); err != nil {
		return nil, err
	}
	if spec.Iterations < 1 {
		return nil, fmt.Errorf("workload: Iterations %d < 1", spec.Iterations)
	}
	if spec.Nodes < 1 {
		return nil, fmt.Errorf("workload: Nodes %d < 1", spec.Nodes)
	}
	tr := &Trace{
		Scenario: spec.Scenario,
		Seed:     spec.Seed,
		Nodes:    spec.Nodes,
		Iters:    make([]IterSpec, spec.Iterations),
	}
	for i := range tr.Iters {
		tr.Iters[i] = IterSpec{
			BytesPerCore: spec.BaseBytesPerCore,
			ComputeTime:  spec.BaseComputeTime,
			VarsPerCore:  spec.BaseVarsPerCore,
		}
	}
	part := rng.NewPartition(spec.Seed)
	ps := passes()
	if perm == nil {
		perm = make([]int, len(ps))
		for i := range perm {
			perm[i] = i
		}
	}
	for _, i := range perm {
		p := ps[i]
		p.run(part.Subsystem("workload/"+p.subsystem), spec, tr)
	}
	tr.canonicalize()
	return tr, nil
}

// cadencePass shapes ComputeTime. Bursty alternates drawn-length quiet
// stretches (slow output cadence) with bursts of rapid iterations.
func cadencePass(s *rng.Stream, spec Spec, tr *Trace) {
	if spec.Scenario != Bursty {
		return
	}
	i := 0
	for i < len(tr.Iters) {
		quiet := 1 + s.Intn(3)
		for j := 0; j < quiet && i < len(tr.Iters); j++ {
			tr.Iters[i].ComputeTime = spec.BaseComputeTime * 1.5
			i++
		}
		burst := 1 + s.Intn(3)
		for j := 0; j < burst && i < len(tr.Iters); j++ {
			tr.Iters[i].ComputeTime = spec.BaseComputeTime * 0.25
			i++
		}
	}
}

// sizePass shapes BytesPerCore. AMR applies multiplicative refinement
// growth capped at 8x; Bursty spikes individual iterations.
func sizePass(s *rng.Stream, spec Spec, tr *Trace) {
	switch spec.Scenario {
	case AMR:
		growth := 1.0
		for i := range tr.Iters {
			if s.Float64() < 0.35 {
				growth *= 1.3 + 0.5*s.Float64()
				if growth > 8 {
					growth = 8
				}
			}
			tr.Iters[i].BytesPerCore = spec.BaseBytesPerCore * growth
		}
	case Bursty:
		for i := range tr.Iters {
			if s.Float64() < 0.25 {
				tr.Iters[i].BytesPerCore = spec.BaseBytesPerCore * (2 + 2*s.Float64())
			} else {
				tr.Iters[i].BytesPerCore = spec.BaseBytesPerCore * 0.6
			}
		}
	}
}

// mixPass shapes the particle-vs-grid dataset mix: particle-heavy
// iterations carry fewer, larger variables.
func mixPass(s *rng.Stream, spec Spec, tr *Trace) {
	if spec.Scenario != ParticleMix {
		return
	}
	for i := range tr.Iters {
		frac := 0.15 + 0.7*s.Float64()
		tr.Iters[i].ParticleFraction = frac
		vars := int(float64(spec.BaseVarsPerCore) * (1.2 - frac))
		if vars < 2 {
			vars = 2
		}
		tr.Iters[i].VarsPerCore = vars
	}
}

// platformPass schedules mid-run platform shifts: bandwidth steps for
// the step scenarios, node loss/rejoin for node-churn.
func platformPass(s *rng.Stream, spec Spec, tr *Trace) {
	n := spec.Iterations
	switch spec.Scenario {
	case NICStep:
		at := n/3 + s.Intn(maxInt(1, n/6))
		tr.Shifts = append(tr.Shifts, PlatformShift{
			Iteration: at, Kind: ShiftNICBandwidth, Factor: 0.2 + 0.15*s.Float64(),
		})
	case PFSStep:
		at := n/3 + s.Intn(maxInt(1, n/6))
		tr.Shifts = append(tr.Shifts, PlatformShift{
			Iteration: at, Kind: ShiftPFSBandwidth, Factor: 0.2 + 0.2*s.Float64(),
		})
	case NodeChurn:
		losses := maxInt(1, spec.Nodes/8)
		seen := map[int]bool{}
		for k := 0; k < losses; k++ {
			node := s.Intn(spec.Nodes)
			for seen[node] {
				node = s.Intn(spec.Nodes)
			}
			seen[node] = true
			tr.Shifts = append(tr.Shifts, PlatformShift{
				Iteration: 1 + s.Intn(maxInt(1, n-1)), Kind: ShiftNodeLoss, Node: node,
			})
		}
		// One rejoin near the end: an adaptation trigger, not a revival.
		tr.Shifts = append(tr.Shifts, PlatformShift{
			Iteration: maxInt(1, n-2), Kind: ShiftNodeRejoin, Node: spec.Nodes,
		})
	}
}

// ladderPass emits the scaling ladder: three rungs doubling from the
// spec's node count. Weak keeps per-core bytes constant; strong keeps
// the total constant (Trace.LadderBytesScale).
func ladderPass(s *rng.Stream, spec Spec, tr *Trace) {
	if spec.Scenario != WeakLadder && spec.Scenario != StrongLadder {
		return
	}
	tr.Ladder = []int{spec.Nodes, spec.Nodes * 2, spec.Nodes * 4}
}

// canonicalize sorts derived slices so the encoded trace does not
// depend on which pass appended first.
func (t *Trace) canonicalize() {
	sort.Slice(t.Shifts, func(i, j int) bool {
		a, b := t.Shifts[i], t.Shifts[j]
		if a.Iteration != b.Iteration {
			return a.Iteration < b.Iteration
		}
		if a.Kind != b.Kind {
			return a.Kind < b.Kind
		}
		return a.Node < b.Node
	})
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
