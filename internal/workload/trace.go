package workload

import (
	"encoding/binary"
	"hash/fnv"
	"math"
)

// IterSpec is one iteration's workload shape.
type IterSpec struct {
	// BytesPerCore is the output this iteration writes per core.
	BytesPerCore float64
	// ComputeTime is the compute phase preceding the write, seconds.
	ComputeTime float64
	// VarsPerCore is how many variables the bytes split into.
	VarsPerCore int
	// ParticleFraction is the share of bytes in particle datasets
	// (0 = pure grid).
	ParticleFraction float64
}

// ShiftKind names a mid-run platform event.
type ShiftKind string

const (
	// ShiftNICBandwidth multiplies interconnect bandwidth by Factor.
	ShiftNICBandwidth ShiftKind = "nic-bandwidth"
	// ShiftPFSBandwidth multiplies PFS bandwidth by Factor.
	ShiftPFSBandwidth ShiftKind = "pfs-bandwidth"
	// ShiftNodeLoss kills Node at the start of Iteration.
	ShiftNodeLoss ShiftKind = "node-loss"
	// ShiftNodeRejoin announces capacity coming back. The runs never
	// resurrect a dead aggregator; the event exists as an adaptation
	// trigger (see docs/SCENARIOS.md).
	ShiftNodeRejoin ShiftKind = "node-rejoin"
)

// PlatformShift is one scheduled platform event.
type PlatformShift struct {
	// Iteration is when the shift takes effect (at phase start).
	Iteration int
	// Kind selects the event.
	Kind ShiftKind
	// Factor is the bandwidth multiplier for the bandwidth kinds.
	Factor float64
	// Node is the victim (node-loss) or returning capacity (rejoin).
	Node int
}

// Trace is a generated scenario: the deterministic output of Generate
// for one Spec. Consumers must treat it as immutable.
type Trace struct {
	// Scenario is the generating scenario name.
	Scenario string
	// Seed is the root seed the trace replays from.
	Seed uint64
	// Nodes is the node count the trace targets.
	Nodes int
	// Iters holds one IterSpec per iteration.
	Iters []IterSpec
	// Shifts holds the scheduled platform events, sorted by iteration.
	Shifts []PlatformShift
	// Ladder lists node counts for the scaling-ladder scenarios (nil
	// otherwise).
	Ladder []int
}

// Iterations reports the trace length.
func (t *Trace) Iterations() int { return len(t.Iters) }

// ShiftsAt returns the platform events taking effect at iteration it.
func (t *Trace) ShiftsAt(it int) []PlatformShift {
	var out []PlatformShift
	for _, s := range t.Shifts {
		if s.Iteration == it {
			out = append(out, s)
		}
	}
	return out
}

// NICFactorAt returns the cumulative NIC bandwidth multiplier in
// effect during iteration it (1 before any shift).
func (t *Trace) NICFactorAt(it int) float64 { return t.factorAt(it, ShiftNICBandwidth) }

// PFSFactorAt returns the cumulative PFS bandwidth multiplier in
// effect during iteration it.
func (t *Trace) PFSFactorAt(it int) float64 { return t.factorAt(it, ShiftPFSBandwidth) }

func (t *Trace) factorAt(it int, kind ShiftKind) float64 {
	f := 1.0
	for _, s := range t.Shifts {
		if s.Kind == kind && s.Iteration <= it {
			f *= s.Factor
		}
	}
	return f
}

// NodeLosses returns the node-loss events in iteration order.
func (t *Trace) NodeLosses() []PlatformShift {
	var out []PlatformShift
	for _, s := range t.Shifts {
		if s.Kind == ShiftNodeLoss {
			out = append(out, s)
		}
	}
	return out
}

// HasPlatformShift reports whether any bandwidth step or node event is
// scheduled — the scenarios where elastic adaptation has something to
// react to.
func (t *Trace) HasPlatformShift() bool { return len(t.Shifts) > 0 }

// MaxBytesPerCore returns the largest per-core output of any
// iteration — the capacity planners (shm segments, queues) size for.
func (t *Trace) MaxBytesPerCore() float64 {
	m := 0.0
	for _, it := range t.Iters {
		if it.BytesPerCore > m {
			m = it.BytesPerCore
		}
	}
	return m
}

// LadderBytesScale returns the per-core byte multiplier at a ladder
// rung of the given node count: 1 under weak scaling (constant
// per-core work), Nodes/rung under strong scaling (constant total).
func (t *Trace) LadderBytesScale(rungNodes int) float64 {
	if t.Scenario == StrongLadder && rungNodes > 0 {
		return float64(t.Nodes) / float64(rungNodes)
	}
	return 1
}

// Encode serializes the trace into canonical bytes: equal traces
// encode identically, so byte comparison is trace comparison. The
// format is internal — it exists for fingerprinting and the replay
// property tests, not for storage.
func (t *Trace) Encode() []byte {
	var b []byte
	u64 := func(v uint64) { b = binary.BigEndian.AppendUint64(b, v) }
	f64 := func(v float64) { u64(math.Float64bits(v)) }
	str := func(s string) { u64(uint64(len(s))); b = append(b, s...) }
	str(t.Scenario)
	u64(t.Seed)
	u64(uint64(t.Nodes))
	u64(uint64(len(t.Iters)))
	for _, it := range t.Iters {
		f64(it.BytesPerCore)
		f64(it.ComputeTime)
		u64(uint64(it.VarsPerCore))
		f64(it.ParticleFraction)
	}
	u64(uint64(len(t.Shifts)))
	for _, s := range t.Shifts {
		u64(uint64(s.Iteration))
		str(string(s.Kind))
		f64(s.Factor)
		u64(uint64(s.Node))
	}
	u64(uint64(len(t.Ladder)))
	for _, n := range t.Ladder {
		u64(uint64(n))
	}
	return b
}

// Fingerprint hashes Encode into one comparable word.
func (t *Trace) Fingerprint() uint64 {
	h := fnv.New64a()
	h.Write(t.Encode())
	return h.Sum64()
}
