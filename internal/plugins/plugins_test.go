package plugins

import (
	"bytes"
	"math"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/compress"
	"repro/internal/core"
	"repro/internal/meta"
	"repro/internal/sdf"
	"repro/internal/storage"
)

const vizXML = `
<simulation name="plugtest">
  <architecture><buffer size="8388608"/></architecture>
  <data>
    <parameter name="n" value="8"/>
    <layout name="cube" type="float64" dimensions="n,n,n"/>
    <variable name="theta" layout="cube" unit="K"/>
  </data>
</simulation>`

func cubeData(fn func(k, j, i int) float64) []byte {
	xs := make([]float64, 8*8*8)
	for k := 0; k < 8; k++ {
		for j := 0; j < 8; j++ {
			for i := 0; i < 8; i++ {
				xs[(k*8+j)*8+i] = fn(k, j, i)
			}
		}
	}
	return compress.Float64Bytes(xs)
}

func smoothCube() []byte {
	return cubeData(func(k, j, i int) float64 {
		return 300 + math.Sin(float64(i)/3) + math.Cos(float64(j+k)/4)
	})
}

func runNode(t *testing.T, plugin core.Plugin, clients, iters int) *core.Node {
	t.Helper()
	cfg, err := meta.ParseString(vizXML)
	if err != nil {
		t.Fatal(err)
	}
	node, err := core.NewNode(cfg, clients, core.Options{
		OutputDir:    t.TempDir(),
		ExtraPlugins: map[string][]core.Plugin{"end_iteration": {plugin}},
	})
	if err != nil {
		t.Fatal(err)
	}
	for it := 0; it < iters; it++ {
		for s := 0; s < clients; s++ {
			c := node.Client(s)
			if err := c.Write("theta", it, smoothCube()); err != nil {
				t.Fatal(err)
			}
			c.EndIteration(it)
		}
	}
	node.WaitIteration(iters - 1)
	if err := node.Shutdown(); err != nil {
		t.Fatal(err)
	}
	return node
}

func TestSDFWriterAggregatesNodeOutput(t *testing.T) {
	dir := t.TempDir()
	w, err := NewSDFWriter(dir, "none")
	if err != nil {
		t.Fatal(err)
	}
	runNode(t, w, 3, 2)
	if w.FilesWritten() != 2 {
		t.Fatalf("files written = %d, want 2 (one per iteration)", w.FilesWritten())
	}
	// Read back the aggregated file: 3 sources × 1 variable.
	path := filepath.Join(dir, "plugtest-node0000-it000001.sdf")
	r, err := sdf.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if got := len(r.Datasets()); got != 3 {
		t.Fatalf("aggregated datasets = %d, want 3", got)
	}
	if it, ok := r.AttrInt("", "iteration"); !ok || it != 1 {
		t.Fatalf("iteration attr = %d ok=%v", it, ok)
	}
	if u, ok := r.AttrString("theta/src0001", "unit"); !ok || u != "K" {
		t.Fatalf("unit attr = %q ok=%v", u, ok)
	}
	vals, err := r.ReadFloat64s("theta/src0002")
	if err != nil {
		t.Fatal(err)
	}
	if len(vals) != 512 {
		t.Fatalf("dataset has %d values", len(vals))
	}
}

func TestSDFWriterCompression(t *testing.T) {
	// A fully-transcendental field has high-entropy mantissas: gorilla
	// should still shrink it some, never grow it much.
	w, err := NewSDFWriter(t.TempDir(), "gorilla")
	if err != nil {
		t.Fatal(err)
	}
	runNode(t, w, 2, 2)
	if r := w.CompressionRatio(); r < 1.05 {
		t.Fatalf("gorilla on smooth fields compressed only %.2fx", r)
	}
}

func TestSDFWriterCompressionSparseField(t *testing.T) {
	// A localized-perturbation field (like cloud water early in a CM1
	// run) is mostly constant: this is where the paper's 600% comes from.
	w, err := NewSDFWriter(t.TempDir(), "gorilla")
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := meta.ParseString(vizXML)
	if err != nil {
		t.Fatal(err)
	}
	node, err := core.NewNode(cfg, 1, core.Options{
		ExtraPlugins: map[string][]core.Plugin{"end_iteration": {w}},
	})
	if err != nil {
		t.Fatal(err)
	}
	sparse := cubeData(func(k, j, i int) float64 {
		if k == 4 && j == 4 {
			return float64(i)
		}
		return 0
	})
	c := node.Client(0)
	if err := c.Write("theta", 0, sparse); err != nil {
		t.Fatal(err)
	}
	c.EndIteration(0)
	node.WaitIteration(0)
	if err := node.Shutdown(); err != nil {
		t.Fatal(err)
	}
	if r := w.CompressionRatio(); r < 4 {
		t.Fatalf("gorilla on sparse field compressed only %.2fx, want >= 4", r)
	}
}

func TestSDFWriterRejectsBadCodec(t *testing.T) {
	if _, err := NewSDFWriter("", "bogus"); err == nil {
		t.Fatal("bad codec accepted")
	}
}

func TestStatsPlugin(t *testing.T) {
	s := NewStats()
	runNode(t, s, 2, 3)
	if s.Rounds() != 3 {
		t.Fatalf("rounds = %d", s.Rounds())
	}
	m, ok := s.Latest("theta")
	if !ok {
		t.Fatal("no moments for theta")
	}
	if m.N != 2*512 {
		t.Fatalf("moments over %d values, want 1024", m.N)
	}
	if m.Min < 297 || m.Max > 303 {
		t.Fatalf("implausible moments: %+v", m)
	}
	if _, ok := s.Latest("never"); ok {
		t.Fatal("moments for unknown variable")
	}
}

func TestVisualizerProducesResultsAndImages(t *testing.T) {
	dir := t.TempDir()
	v, err := NewVisualizer(map[string]string{"dir": dir, "bins": "16"})
	if err != nil {
		t.Fatal(err)
	}
	runNode(t, v, 2, 2)
	results := v.Results()
	if len(results) != 2 {
		t.Fatalf("results = %d, want 2 (one per iteration)", len(results))
	}
	for _, res := range results {
		if res.Field != "theta" || len(res.Histogram) != 16 {
			t.Fatalf("result = %+v", res)
		}
		// Two sources stacked along z: 16×8×8 field.
		if res.Moments.N != 1024 {
			t.Fatalf("analyzed %d values", res.Moments.N)
		}
	}
	imgs, err := filepath.Glob(filepath.Join(dir, "*.pgm"))
	if err != nil {
		t.Fatal(err)
	}
	if len(imgs) != 2 {
		t.Fatalf("rendered %d images, want 2", len(imgs))
	}
	data, err := os.ReadFile(imgs[0])
	if err != nil {
		t.Fatal(err)
	}
	if string(data[:2]) != "P5" {
		t.Fatal("not a PGM image")
	}
}

func TestVisualizerConfigValidation(t *testing.T) {
	if _, err := NewVisualizer(map[string]string{"bins": "NaN"}); err == nil {
		t.Fatal("bad bins accepted")
	}
	if _, err := NewVisualizer(map[string]string{"render": "maybe"}); err == nil {
		t.Fatal("bad render accepted")
	}
}

func TestXMLRegistryIntegration(t *testing.T) {
	// End-to-end: plugins declared purely in XML, resolved via init().
	dir := t.TempDir()
	xml := `<simulation name="xmlflow">
	  <architecture><buffer size="4194304"/></architecture>
	  <data>
	    <layout name="cube" type="float64" dimensions="8,8,8"/>
	    <variable name="theta" layout="cube"/>
	  </data>
	  <plugins>
	    <plugin name="sdf-writer" event="end_iteration" dir="` + dir + `" codec="flate"/>
	    <plugin name="stats" event="end_iteration"/>
	  </plugins>
	</simulation>`
	cfg, err := meta.ParseString(xml)
	if err != nil {
		t.Fatal(err)
	}
	node, err := core.NewNode(cfg, 1, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	c := node.Client(0)
	if err := c.Write("theta", 0, smoothCube()); err != nil {
		t.Fatal(err)
	}
	c.EndIteration(0)
	node.WaitIteration(0)
	if err := node.Shutdown(); err != nil {
		t.Fatal(err)
	}
	files, _ := filepath.Glob(filepath.Join(dir, "*.sdf"))
	if len(files) != 1 {
		t.Fatalf("XML-configured writer produced %d files", len(files))
	}
}

// TestSDFWriterThroughStore: with a storage backend attached, the
// aggregated per-iteration file becomes one object in the store and
// nothing lands on the local file system.
func TestSDFWriterThroughStore(t *testing.T) {
	store := storage.NewMemory(nil, 4, 1e9)
	w, err := NewSDFWriterStore(store, "none")
	if err != nil {
		t.Fatal(err)
	}
	runNode(t, w, 3, 2)
	if w.FilesWritten() != 2 {
		t.Fatalf("files written = %d, want 2", w.FilesWritten())
	}
	obj, ok := store.Object("plugtest-node0000-it000001")
	if !ok {
		t.Fatalf("object missing from store (have %v)", store.ObjectNames())
	}
	// The object is a complete SDF file: parse it from memory.
	r, err := sdf.NewReader(bytes.NewReader(obj), int64(len(obj)))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if got := len(r.Datasets()); got != 3 {
		t.Fatalf("aggregated datasets = %d, want 3", got)
	}
	if it, ok := r.AttrInt("", "iteration"); !ok || it != 1 {
		t.Fatalf("iteration attr = %d, %v", it, ok)
	}
	if acc := store.Accounting(); acc.Objects != 2 {
		t.Fatalf("store holds %d objects, want 2", acc.Objects)
	}
}
