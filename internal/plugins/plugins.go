// Package plugins provides the built-in data-management plugins of the
// middleware, matching the uses the paper reports: aggregated SDF output
// (the "forward I/O operations to HDF5" case of §III.A), transparent
// compression (§IV.D), statistics, and in-situ visualization (§V).
//
// Importing this package registers every built-in under its XML name:
//
//	sdf-writer   dir=<path> codec=<none|gorilla|flate|rle>
//	stats        (computes per-variable moments each iteration)
//	visualize    dir=<path> bins=<n> render=<true|false>
package plugins

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"sync"

	"repro/internal/compress"
	"repro/internal/core"
	"repro/internal/insitu"
	"repro/internal/meta"
	"repro/internal/sdf"
	"repro/internal/storage"
)

func init() {
	core.RegisterPlugin("sdf-writer", func(cfg map[string]string) (core.Plugin, error) {
		return NewSDFWriter(cfg["dir"], cfg["codec"])
	})
	core.RegisterPlugin("stats", func(cfg map[string]string) (core.Plugin, error) {
		return NewStats(), nil
	})
	core.RegisterPlugin("visualize", func(cfg map[string]string) (core.Plugin, error) {
		return NewVisualizer(cfg)
	})
}

// SDFWriter aggregates every block of an iteration into one SDF file per
// node — the paper's key I/O behaviour: "group the output of multiple
// processes into bigger files without the communication overhead of a
// collective I/O approach" (§IV.B).
type SDFWriter struct {
	Dir   string
	Codec string
	// Store, when set, receives each aggregated file as one object in
	// a storage backend (see internal/storage) instead of the local
	// file system — the path the cluster layer uses.
	Store storage.ObjectStore

	mu           sync.Mutex
	filesWritten int
	bytesIn      int64 // raw payload aggregated
	bytesOut     int64 // bytes on storage
}

// NewSDFWriter validates the codec name and returns the plugin.
func NewSDFWriter(dir, codec string) (*SDFWriter, error) {
	if _, err := compress.ByName(codec); err != nil {
		return nil, err
	}
	return &SDFWriter{Dir: dir, Codec: codec}, nil
}

// NewSDFWriterStore returns the plugin writing through a storage
// backend's object store.
func NewSDFWriterStore(store storage.ObjectStore, codec string) (*SDFWriter, error) {
	w, err := NewSDFWriter("", codec)
	if err != nil {
		return nil, err
	}
	w.Store = store
	return w, nil
}

// Name implements core.Plugin.
func (w *SDFWriter) Name() string { return "sdf-writer" }

// FilesWritten returns how many files the plugin produced.
func (w *SDFWriter) FilesWritten() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.filesWritten
}

// CompressionRatio returns aggregate raw/stored bytes across all files.
func (w *SDFWriter) CompressionRatio() float64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.bytesOut == 0 {
		return 0
	}
	return float64(w.bytesIn) / float64(w.bytesOut)
}

// OnEvent implements core.Plugin: on end_iteration it writes the
// node-aggregated file for that iteration.
func (w *SDFWriter) OnEvent(ctx *core.PluginContext, ev core.Event) error {
	refs := ctx.Index.Iteration(ev.Iteration)
	if len(refs) == 0 {
		return nil
	}
	name := fmt.Sprintf("%s-node%04d-it%06d", ctx.Config.Name, ctx.NodeID, ev.Iteration)
	var (
		out *sdf.Writer
		buf *bytes.Buffer
	)
	if w.Store != nil {
		buf = &bytes.Buffer{}
		out = sdf.NewWriter(buf)
	} else {
		dir := w.Dir
		if dir == "" {
			dir = ctx.OutputDir
		}
		if dir == "" {
			dir = "."
		}
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
		var err error
		out, err = sdf.Create(filepath.Join(dir, name+".sdf"))
		if err != nil {
			return err
		}
	}
	out.SetAttrInt("", "iteration", int64(ev.Iteration))
	out.SetAttrInt("", "node", int64(ctx.NodeID))
	var rawTotal int64
	for _, ref := range refs {
		v, ok := ctx.Config.Variables[ref.Key.Variable]
		if !ok {
			out.Close()
			return fmt.Errorf("block for undeclared variable %q", ref.Key.Variable)
		}
		path := fmt.Sprintf("%s/src%04d", ref.Key.Variable, ref.Key.Source)
		if err := out.WriteDataset(path, v.Layout.Type, v.Layout.Dims, ctx.BlockBytes(ref), w.Codec); err != nil {
			out.Close()
			return err
		}
		if v.Unit != "" {
			out.SetAttrString(path, "unit", v.Unit)
		}
		rawTotal += int64(ref.Size)
	}
	stored := out.BytesWritten()
	if err := out.Close(); err != nil {
		return err
	}
	if w.Store != nil {
		if err := w.Store.Put(name, buf.Bytes()); err != nil {
			return err
		}
	}
	w.mu.Lock()
	w.filesWritten++
	w.bytesIn += rawTotal
	w.bytesOut += stored
	w.mu.Unlock()
	return nil
}

// Stats computes per-variable moments on the dedicated core each
// iteration — the "statistical analysis" use of the plugin system.
type Stats struct {
	mu     sync.Mutex
	latest map[string]insitu.Moments
	rounds int
}

// NewStats returns an empty Stats plugin.
func NewStats() *Stats { return &Stats{latest: map[string]insitu.Moments{}} }

// Name implements core.Plugin.
func (s *Stats) Name() string { return "stats" }

// Latest returns the most recent moments for a variable.
func (s *Stats) Latest(variable string) (insitu.Moments, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	m, ok := s.latest[variable]
	return m, ok
}

// Rounds returns how many end-of-iteration passes ran.
func (s *Stats) Rounds() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.rounds
}

// OnEvent implements core.Plugin.
func (s *Stats) OnEvent(ctx *core.PluginContext, ev core.Event) error {
	perVar := map[string][]float64{}
	for _, ref := range ctx.Index.Iteration(ev.Iteration) {
		v := ctx.Config.Variables[ref.Key.Variable]
		if v == nil || v.Layout.Type != meta.Float64 {
			continue
		}
		vals := compress.BytesFloat64(ctx.BlockBytes(ref))
		perVar[ref.Key.Variable] = append(perVar[ref.Key.Variable], vals...)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for name, vals := range perVar {
		f := insitu.Field{Name: name, NZ: 1, NY: 1, NX: len(vals), Data: vals}
		s.latest[name] = insitu.ComputeMoments(f)
	}
	s.rounds++
	return nil
}

// Visualizer runs the in-situ pipeline (histogram, isosurface, render)
// on the dedicated core and writes one PGM image per variable per
// iteration — the Damaris-coupled visualization of §V.B.
type Visualizer struct {
	Dir      string
	Pipeline insitu.Pipeline

	mu      sync.Mutex
	results []insitu.Result
}

// NewVisualizer builds a Visualizer from XML plugin attributes.
func NewVisualizer(cfg map[string]string) (*Visualizer, error) {
	p := insitu.DefaultPipeline()
	if b := cfg["bins"]; b != "" {
		n, err := strconv.Atoi(b)
		if err != nil {
			return nil, fmt.Errorf("visualize: bad bins %q", b)
		}
		p.Bins = n
	}
	if r := cfg["render"]; r != "" {
		on, err := strconv.ParseBool(r)
		if err != nil {
			return nil, fmt.Errorf("visualize: bad render %q", r)
		}
		p.Render = on
	}
	return &Visualizer{Dir: cfg["dir"], Pipeline: p}, nil
}

// Name implements core.Plugin.
func (v *Visualizer) Name() string { return "visualize" }

// Results returns the analysis results so far.
func (v *Visualizer) Results() []insitu.Result {
	v.mu.Lock()
	defer v.mu.Unlock()
	return append([]insitu.Result(nil), v.results...)
}

// OnEvent implements core.Plugin: reassembles each 3-D variable from the
// iteration's blocks (one block per source, stacked along z) and runs
// the pipeline on it.
func (v *Visualizer) OnEvent(ctx *core.PluginContext, ev core.Event) error {
	for _, name := range ctx.Config.VariableNames() {
		varMeta := ctx.Config.Variables[name]
		if varMeta.Layout.Type != meta.Float64 || len(varMeta.Layout.Dims) != 3 {
			continue
		}
		refs := ctx.Index.Variable(name, ev.Iteration)
		if len(refs) == 0 {
			continue
		}
		dims := varMeta.Layout.Dims
		field := insitu.Field{
			Name: name,
			NZ:   dims[0] * len(refs),
			NY:   dims[1],
			NX:   dims[2],
		}
		for _, ref := range refs {
			field.Data = append(field.Data, compress.BytesFloat64(ctx.BlockBytes(ref))...)
		}
		res, err := v.Pipeline.Analyze(field, ev.Iteration)
		if err != nil {
			return err
		}
		if v.Pipeline.Render && v.Dir != "" {
			if err := os.MkdirAll(v.Dir, 0o755); err != nil {
				return err
			}
			img := fmt.Sprintf("%s-node%04d-it%06d-%s.pgm", ctx.Config.Name, ctx.NodeID, ev.Iteration, name)
			if err := os.WriteFile(filepath.Join(v.Dir, img), res.Image.EncodePGM(), 0o644); err != nil {
				return err
			}
		}
		v.mu.Lock()
		v.results = append(v.results, res)
		v.mu.Unlock()
	}
	return nil
}
