package core

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"repro/internal/compress"
	"repro/internal/meta"
)

const testXML = `
<simulation name="t">
  <architecture>
    <dedicated cores="1"/>
    <buffer size="1048576"/>
    <queue size="64"/>
  </architecture>
  <data>
    <parameter name="n" value="64"/>
    <layout name="line" type="float64" dimensions="n"/>
    <variable name="u" layout="line"/>
    <variable name="v" layout="line"/>
  </data>
</simulation>`

func testConfig(t *testing.T) *meta.Config {
	t.Helper()
	cfg, err := meta.ParseString(testXML)
	if err != nil {
		t.Fatal(err)
	}
	return cfg
}

func lineData(seed float64) []byte {
	xs := make([]float64, 64)
	for i := range xs {
		xs[i] = seed + float64(i)
	}
	return compress.Float64Bytes(xs)
}

// collectPlugin records the blocks it sees at each end_iteration.
type collectPlugin struct {
	mu   sync.Mutex
	seen map[int][]meta.BlockKey
	data map[meta.BlockKey]float64 // first element of each block
}

func (p *collectPlugin) Name() string { return "collect" }

func (p *collectPlugin) OnEvent(ctx *PluginContext, ev Event) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, ref := range ctx.Index.Iteration(ev.Iteration) {
		p.seen[ev.Iteration] = append(p.seen[ev.Iteration], ref.Key)
		vals := compress.BytesFloat64(ctx.BlockBytes(ref))
		p.data[ref.Key] = vals[0]
	}
	return nil
}

func newCollect() *collectPlugin {
	return &collectPlugin{seen: map[int][]meta.BlockKey{}, data: map[meta.BlockKey]float64{}}
}

func TestWriteEndIterationPluginFlow(t *testing.T) {
	cp := newCollect()
	node, err := NewNode(testConfig(t), 2, Options{
		ExtraPlugins: map[string][]Plugin{"end_iteration": {cp}},
	})
	if err != nil {
		t.Fatal(err)
	}
	c0, c1 := node.Client(0), node.Client(1)
	for it := 0; it < 3; it++ {
		if err := c0.Write("u", it, lineData(float64(100*it))); err != nil {
			t.Fatal(err)
		}
		if err := c1.Write("u", it, lineData(float64(100*it+1))); err != nil {
			t.Fatal(err)
		}
		if err := c1.Write("v", it, lineData(float64(100*it+2))); err != nil {
			t.Fatal(err)
		}
		c0.EndIteration(it)
		c1.EndIteration(it)
	}
	node.WaitIteration(2)
	if err := node.Shutdown(); err != nil {
		t.Fatal(err)
	}
	for it := 0; it < 3; it++ {
		if len(cp.seen[it]) != 3 {
			t.Fatalf("iteration %d: plugin saw %d blocks, want 3", it, len(cp.seen[it]))
		}
	}
	// Block contents must be what each client wrote.
	k := meta.BlockKey{Variable: "u", Source: 1, Iteration: 2}
	if cp.data[k] != 201 {
		t.Fatalf("block %v first element = %v, want 201", k, cp.data[k])
	}
	st := node.Stats()
	if st.BlocksWritten != 9 || st.IterationsCompleted != 3 || st.SkippedWrites != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestBlocksFreedAfterIteration(t *testing.T) {
	node, err := NewNode(testConfig(t), 1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	c := node.Client(0)
	for it := 0; it < 50; it++ {
		if err := c.Write("u", it, lineData(1)); err != nil {
			t.Fatalf("iteration %d: %v", it, err)
		}
		c.EndIteration(it)
	}
	node.WaitIteration(49)
	if err := node.Shutdown(); err != nil {
		t.Fatal(err)
	}
	if got := node.Segment().Allocated(); got != 0 {
		t.Fatalf("leaked %d bytes of shared memory", got)
	}
	if node.Index().Len() != 0 {
		t.Fatalf("index still holds %d blocks", node.Index().Len())
	}
}

func TestWriteValidation(t *testing.T) {
	node, _ := NewNode(testConfig(t), 1, Options{})
	defer node.Shutdown()
	c := node.Client(0)
	if err := c.Write("nope", 0, nil); err == nil {
		t.Error("unknown variable accepted")
	}
	if err := c.Write("u", 0, make([]byte, 7)); err == nil {
		t.Error("wrong size accepted")
	}
}

func TestSkipPolicyWhenSegmentFull(t *testing.T) {
	cfg := testConfig(t)
	cfg.Architecture.BufferSize = 1024 // holds just two 512-byte blocks
	node, err := NewNode(cfg, 1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	c := node.Client(0)
	// First two writes fit (u and v are 512 bytes each) but the server
	// never frees them because we do not end the iteration; iteration 1
	// must be skipped without blocking.
	if err := c.Write("u", 0, lineData(0)); err != nil {
		t.Fatal(err)
	}
	if err := c.Write("v", 0, lineData(0)); err != nil {
		t.Fatal(err)
	}
	err = c.Write("u", 1, lineData(0))
	if !errors.Is(err, ErrSkipped) {
		t.Fatalf("want ErrSkipped, got %v", err)
	}
	// The rest of the skipped iteration fails fast too.
	if err := c.Write("v", 1, lineData(0)); !errors.Is(err, ErrSkipped) {
		t.Fatalf("want ErrSkipped for second write, got %v", err)
	}
	if node.Stats().SkippedWrites == 0 {
		t.Fatal("skip not counted")
	}
	c.EndIteration(0)
	c.EndIteration(1)
	node.WaitIteration(1)
	node.Shutdown()
}

func TestAllocCommitZeroCopy(t *testing.T) {
	cp := newCollect()
	node, _ := NewNode(testConfig(t), 1, Options{
		ExtraPlugins: map[string][]Plugin{"end_iteration": {cp}},
	})
	c := node.Client(0)
	buf, commit, err := c.Alloc("u", 0)
	if err != nil {
		t.Fatal(err)
	}
	copy(buf, lineData(7))
	if err := commit(); err != nil {
		t.Fatal(err)
	}
	c.EndIteration(0)
	node.WaitIteration(0)
	node.Shutdown()
	k := meta.BlockKey{Variable: "u", Source: 0, Iteration: 0}
	if cp.data[k] != 7 {
		t.Fatalf("zero-copy block content = %v", cp.data[k])
	}
}

func TestSignalTriggersNamedPlugin(t *testing.T) {
	fired := make(chan Event, 1)
	p := PluginFunc{PluginName: "onsig", Fn: func(ctx *PluginContext, ev Event) error {
		fired <- ev
		return nil
	}}
	node, _ := NewNode(testConfig(t), 1, Options{
		ExtraPlugins: map[string][]Plugin{"checkpoint": {p}},
	})
	c := node.Client(0)
	c.Signal("checkpoint", 5)
	node.Shutdown()
	select {
	case ev := <-fired:
		if ev.Name != "checkpoint" || ev.Iteration != 5 {
			t.Fatalf("event = %+v", ev)
		}
	default:
		t.Fatal("signal plugin did not fire")
	}
}

func TestPluginErrorIsolation(t *testing.T) {
	bad := PluginFunc{PluginName: "bad", Fn: func(*PluginContext, Event) error {
		return fmt.Errorf("boom")
	}}
	panicky := PluginFunc{PluginName: "panicky", Fn: func(*PluginContext, Event) error {
		panic("kaboom")
	}}
	good := newCollect()
	node, _ := NewNode(testConfig(t), 1, Options{
		ExtraPlugins: map[string][]Plugin{"end_iteration": {bad, panicky, good}},
	})
	c := node.Client(0)
	c.Write("u", 0, lineData(1))
	c.EndIteration(0)
	node.WaitIteration(0)
	err := node.Shutdown()
	if err == nil {
		t.Fatal("plugin error not surfaced")
	}
	if len(node.Errors()) != 2 {
		t.Fatalf("errors = %v", node.Errors())
	}
	// The good plugin still ran, and the service completed the iteration.
	if len(good.seen[0]) != 1 {
		t.Fatal("good plugin starved by failing ones")
	}
	if node.Stats().PluginErrors != 2 {
		t.Fatalf("plugin error count = %d", node.Stats().PluginErrors)
	}
}

func TestXMLConfiguredPluginResolution(t *testing.T) {
	RegisterPlugin("test-noop", func(cfg map[string]string) (Plugin, error) {
		if cfg["mode"] != "fast" {
			return nil, fmt.Errorf("bad mode")
		}
		return PluginFunc{PluginName: "test-noop", Fn: func(*PluginContext, Event) error { return nil }}, nil
	})
	xml := `<simulation name="t">
	  <data>
	    <layout name="l" type="float64" dimensions="8"/>
	    <variable name="u" layout="l"/>
	  </data>
	  <plugins><plugin name="test-noop" event="end_iteration" mode="fast"/></plugins>
	</simulation>`
	cfg, err := meta.ParseString(xml)
	if err != nil {
		t.Fatal(err)
	}
	node, err := NewNode(cfg, 1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	node.Shutdown()

	// Unregistered plugin names must be rejected at startup.
	xml2 := `<simulation name="t"><data/>
	  <plugins><plugin name="never-registered" event="end_iteration"/></plugins>
	</simulation>`
	cfg2, _ := meta.ParseString(xml2)
	if _, err := NewNode(cfg2, 1, Options{}); err == nil {
		t.Fatal("unregistered plugin accepted")
	}
}

func TestConcurrentClients(t *testing.T) {
	const clients = 8
	cfg := testConfig(t)
	cfg.Architecture.BufferSize = 16 << 20
	cp := newCollect()
	node, _ := NewNode(cfg, clients, Options{
		ExtraPlugins: map[string][]Plugin{"end_iteration": {cp}},
	})
	var wg sync.WaitGroup
	for s := 0; s < clients; s++ {
		wg.Add(1)
		go func(src int) {
			defer wg.Done()
			c := node.Client(src)
			for it := 0; it < 5; it++ {
				if err := c.Write("u", it, lineData(float64(src))); err != nil {
					t.Errorf("client %d it %d: %v", src, it, err)
				}
				c.EndIteration(it)
			}
		}(s)
	}
	wg.Wait()
	node.WaitIteration(4)
	if err := node.Shutdown(); err != nil {
		t.Fatal(err)
	}
	for it := 0; it < 5; it++ {
		if len(cp.seen[it]) != clients {
			t.Fatalf("iteration %d saw %d blocks", it, len(cp.seen[it]))
		}
	}
}

func TestRewriteSameKeyReplacesBlock(t *testing.T) {
	node, _ := NewNode(testConfig(t), 1, Options{})
	c := node.Client(0)
	if err := c.Write("u", 0, lineData(1)); err != nil {
		t.Fatal(err)
	}
	if err := c.Write("u", 0, lineData(2)); err != nil {
		t.Fatal(err)
	}
	// Only one block should be live (the old one freed).
	if node.Index().Len() != 1 {
		t.Fatalf("index has %d blocks", node.Index().Len())
	}
	c.EndIteration(0)
	node.WaitIteration(0)
	node.Shutdown()
	if node.Segment().Allocated() != 0 {
		t.Fatal("replaced block leaked")
	}
}

func BenchmarkClientWrite(b *testing.B) {
	cfg, _ := meta.ParseString(testXML)
	cfg.Architecture.BufferSize = 64 << 20
	node, _ := NewNode(cfg, 1, Options{})
	defer node.Shutdown()
	c := node.Client(0)
	data := lineData(0)
	b.SetBytes(int64(len(data)))
	for i := 0; i < b.N; i++ {
		if err := c.Write("u", i, data); err != nil {
			b.Fatal(err)
		}
		c.EndIteration(i)
	}
}
