// Package core implements the Damaris middleware (§III): on every SMP
// node, one or a few dedicated cores run a data-management service that
// the simulation cores talk to exclusively through node-local shared
// memory and a message queue.
//
// A Node owns the shared-memory Segment, the event Queue, the block
// Index, and the dedicated-core server goroutine. Each simulation core
// holds a Client, whose API mirrors the original middleware:
//
//	Write(variable, iteration, data)  copy data into shared memory
//	Alloc / Commit                    zero-copy variant
//	Signal(name, iteration)           trigger a plugin event
//	EndIteration(iteration)           mark this core's step complete
//
// When every client of the node has ended an iteration, the server fires
// the configured end-of-iteration plugins (I/O, compression, analysis,
// visualization), then frees the iteration's blocks.
//
// When the segment is full, Write fails with ErrSkipped and the whole
// iteration is dropped for that client — the paper's §V.C policy of
// "accepting potential loss of data rather than blocking the simulation".
package core

import (
	"errors"
	"fmt"
	"log"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/meta"
	"repro/internal/shm"
)

// ErrSkipped reports that data was dropped because the shared-memory
// segment was full.
var ErrSkipped = errors.New("damaris: iteration skipped (shared memory full)")

// EventKind discriminates queue messages.
type EventKind int

// Queue event kinds.
const (
	EventWrite EventKind = iota
	EventSignal
	EventEndIteration
	EventStop
)

// Event is one message on the node's queue.
type Event struct {
	Kind      EventKind
	Source    int
	Iteration int
	// Name is the signal name (EventSignal) or variable (EventWrite).
	Name string
}

// Plugin is a user-provided data-management action run by the dedicated
// core (§III.A's plugin system).
type Plugin interface {
	// Name identifies the plugin in logs and errors.
	Name() string
	// OnEvent is called on the dedicated core. For end_iteration events
	// the iteration's blocks are in ctx.Index until OnEvent returns.
	OnEvent(ctx *PluginContext, ev Event) error
}

// PluginFunc adapts a function to the Plugin interface.
type PluginFunc struct {
	PluginName string
	Fn         func(ctx *PluginContext, ev Event) error
}

// Name implements Plugin.
func (p PluginFunc) Name() string { return p.PluginName }

// OnEvent implements Plugin.
func (p PluginFunc) OnEvent(ctx *PluginContext, ev Event) error { return p.Fn(ctx, ev) }

// PluginFactory builds a plugin from its XML <plugin> attributes.
type PluginFactory func(cfg map[string]string) (Plugin, error)

var (
	registryMu sync.RWMutex
	registry   = map[string]PluginFactory{}
)

// RegisterPlugin adds a factory to the global plugin registry; XML
// configurations refer to it by name.
func RegisterPlugin(name string, f PluginFactory) {
	registryMu.Lock()
	defer registryMu.Unlock()
	registry[name] = f
}

func lookupPlugin(name string) (PluginFactory, bool) {
	registryMu.RLock()
	defer registryMu.RUnlock()
	f, ok := registry[name]
	return f, ok
}

// PluginContext is what a plugin sees of the node.
type PluginContext struct {
	Config    *meta.Config
	Index     *meta.Index
	NodeID    int
	OutputDir string
	Logger    *log.Logger
}

// BlockBytes returns the shared-memory bytes of an indexed block.
// Plugins work directly on this memory — the zero-copy path the design
// is built around.
func (ctx *PluginContext) BlockBytes(ref meta.BlockRef) []byte {
	return ref.Data.(*shm.Block).Bytes()
}

// Stats aggregates what the node measured.
type Stats struct {
	// BlocksWritten and BytesWritten count committed client writes.
	BlocksWritten int64
	BytesWritten  int64
	// IterationsCompleted counts iterations fully processed by the
	// dedicated core (all clients ended, plugins ran, blocks freed).
	IterationsCompleted int64
	// SkippedWrites counts client writes dropped because the segment was
	// full (the paper's skip-rather-than-block policy).
	SkippedWrites int64
	// ServerBusy is the dedicated core's cumulative event-processing time.
	ServerBusy time.Duration
	// PluginErrors counts plugin failures (the errors themselves are in
	// Errors).
	PluginErrors int64
}

// counters is the node's live tally behind Stats. The fields written on
// the client write path are atomics so concurrent writers never
// serialize on the node mutex just to bump a counter; the mutex-guarded
// state (errs, endCount, skipped) keeps its own locks.
type counters struct {
	blocksWritten       atomic.Int64
	bytesWritten        atomic.Int64
	iterationsCompleted atomic.Int64 // updated under Node.mu for WaitIteration's cond
	skippedWrites       atomic.Int64
	serverBusy          atomic.Int64 // nanoseconds
	pluginErrors        atomic.Int64
}

// Options tune NewNode beyond the XML configuration.
type Options struct {
	// NodeID distinguishes nodes in output file names.
	NodeID int
	// OutputDir is where I/O plugins write; empty means current dir.
	OutputDir string
	// Logger defaults to a silent logger.
	Logger *log.Logger
	// ExtraPlugins are instantiated plugins bound to events, in addition
	// to those named in the XML configuration.
	ExtraPlugins map[string][]Plugin
}

// Node is one SMP node's Damaris instance.
type Node struct {
	cfg     *meta.Config
	seg     *shm.Segment
	queue   *shm.Queue[Event]
	index   *meta.Index
	clients int
	opts    Options

	plugins map[string][]Plugin // event name → plugins

	stats counters

	mu         sync.Mutex
	errs       []error
	endCount   map[int]int
	iterDone   *sync.Cond
	serverDone chan struct{}

	// skipMu guards skipped separately from mu: the not-skipped check is
	// on every client write's fast path and only needs a read lock.
	skipMu  sync.RWMutex
	skipped map[skipKey]bool
}

type skipKey struct{ source, iteration int }

// NewNode builds the node runtime: shared-memory segment, queue, index,
// plugins, and the dedicated-core server. clients is the number of
// simulation cores that will attach.
func NewNode(cfg *meta.Config, clients int, opts Options) (*Node, error) {
	if clients <= 0 {
		return nil, fmt.Errorf("damaris: need at least one client, got %d", clients)
	}
	seg, err := shm.NewSegment(cfg.Architecture.BufferSize)
	if err != nil {
		return nil, err
	}
	if opts.Logger == nil {
		opts.Logger = log.New(discard{}, "", 0)
	}
	n := &Node{
		cfg:        cfg,
		seg:        seg,
		queue:      shm.NewQueue[Event](cfg.Architecture.QueueSize),
		index:      meta.NewIndex(),
		clients:    clients,
		opts:       opts,
		plugins:    map[string][]Plugin{},
		endCount:   map[int]int{},
		skipped:    map[skipKey]bool{},
		serverDone: make(chan struct{}),
	}
	n.iterDone = sync.NewCond(&n.mu)
	for _, spec := range cfg.Plugins {
		factory, ok := lookupPlugin(spec.Name)
		if !ok {
			return nil, fmt.Errorf("damaris: plugin %q not registered", spec.Name)
		}
		p, err := factory(spec.Config)
		if err != nil {
			return nil, fmt.Errorf("damaris: building plugin %q: %w", spec.Name, err)
		}
		n.plugins[spec.Event] = append(n.plugins[spec.Event], p)
	}
	for event, ps := range opts.ExtraPlugins {
		n.plugins[event] = append(n.plugins[event], ps...)
	}
	go n.serve()
	return n, nil
}

type discard struct{}

func (discard) Write(p []byte) (int, error) { return len(p), nil }

// Config returns the node's parsed configuration.
func (n *Node) Config() *meta.Config { return n.cfg }

// Index exposes the block index (read-mostly; plugins use it).
func (n *Node) Index() *meta.Index { return n.index }

// Segment exposes the shared-memory segment (diagnostics).
func (n *Node) Segment() *shm.Segment { return n.seg }

// Stats returns a snapshot of the node's counters.
func (n *Node) Stats() Stats {
	return Stats{
		BlocksWritten:       n.stats.blocksWritten.Load(),
		BytesWritten:        n.stats.bytesWritten.Load(),
		IterationsCompleted: n.stats.iterationsCompleted.Load(),
		SkippedWrites:       n.stats.skippedWrites.Load(),
		ServerBusy:          time.Duration(n.stats.serverBusy.Load()),
		PluginErrors:        n.stats.pluginErrors.Load(),
	}
}

// Errors returns the plugin errors collected so far.
func (n *Node) Errors() []error {
	n.mu.Lock()
	defer n.mu.Unlock()
	return append([]error(nil), n.errs...)
}

// Client returns the handle for one simulation core. source must be
// unique per core on this node.
func (n *Node) Client(source int) *Client {
	return &Client{node: n, source: source}
}

// WaitIteration blocks until the server has completed the given
// iteration (all clients ended it and plugins ran).
func (n *Node) WaitIteration(it int) {
	n.mu.Lock()
	defer n.mu.Unlock()
	for n.stats.iterationsCompleted.Load() <= int64(it) {
		n.iterDone.Wait()
	}
}

// Shutdown stops the server after all queued events are processed and
// returns the first plugin error, if any.
func (n *Node) Shutdown() error {
	n.queue.Send(Event{Kind: EventStop})
	<-n.serverDone
	n.seg.Close()
	n.mu.Lock()
	defer n.mu.Unlock()
	if len(n.errs) > 0 {
		return n.errs[0]
	}
	return nil
}

// serve is the dedicated-core loop.
func (n *Node) serve() {
	defer close(n.serverDone)
	for {
		ev, ok := n.queue.Recv()
		if !ok {
			return
		}
		start := time.Now()
		switch ev.Kind {
		case EventStop:
			return
		case EventWrite:
			// Blocks are indexed by the client; the event exists so the
			// server can adapt (prefetch, schedule) — nothing to do in
			// the base middleware.
		case EventSignal:
			n.firePlugins(ev.Name, ev)
		case EventEndIteration:
			n.mu.Lock()
			n.endCount[ev.Iteration]++
			complete := n.endCount[ev.Iteration] == n.clients
			if complete {
				delete(n.endCount, ev.Iteration)
			}
			n.mu.Unlock()
			if complete {
				n.firePlugins("end_iteration", ev)
				n.collectIteration(ev.Iteration)
			}
		}
		n.stats.serverBusy.Add(int64(time.Since(start)))
	}
}

func (n *Node) firePlugins(event string, ev Event) {
	ctx := &PluginContext{
		Config:    n.cfg,
		Index:     n.index,
		NodeID:    n.opts.NodeID,
		OutputDir: n.opts.OutputDir,
		Logger:    n.opts.Logger,
	}
	for _, p := range n.plugins[event] {
		// A failing plugin must not take down the service: record and
		// continue (plugin isolation).
		if err := safeCall(p, ctx, ev); err != nil {
			n.mu.Lock()
			n.errs = append(n.errs, fmt.Errorf("plugin %q on %q: %w", p.Name(), event, err))
			n.mu.Unlock()
			n.stats.pluginErrors.Add(1)
			n.opts.Logger.Printf("plugin %q failed: %v", p.Name(), err)
		}
	}
}

func safeCall(p Plugin, ctx *PluginContext, ev Event) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("panic: %v", r)
		}
	}()
	return p.OnEvent(ctx, ev)
}

// collectIteration frees the iteration's blocks after plugins consumed
// them (the garbage-collection step).
func (n *Node) collectIteration(it int) {
	for _, ref := range n.index.RemoveIteration(it) {
		ref.Data.(*shm.Block).Free()
	}
	// The increment happens under mu so WaitIteration cannot check the
	// counter and then miss the broadcast.
	n.mu.Lock()
	n.stats.iterationsCompleted.Add(1)
	n.iterDone.Broadcast()
	n.mu.Unlock()
}

// Client is the per-simulation-core API.
type Client struct {
	node   *Node
	source int
}

// Source returns the client's identifier.
func (c *Client) Source() int { return c.source }

// Write copies data for one variable of one iteration into shared memory
// and notifies the dedicated core. It returns ErrSkipped (and drops the
// whole iteration for this client) when the segment is full.
func (c *Client) Write(variable string, iteration int, data []byte) error {
	n := c.node
	v, ok := n.cfg.Variables[variable]
	if !ok {
		return fmt.Errorf("damaris: unknown variable %q", variable)
	}
	if want := v.Layout.SizeBytes(); len(data) != want {
		return fmt.Errorf("damaris: variable %q expects %d bytes, got %d", variable, want, len(data))
	}
	buf, commit, err := c.alloc(variable, iteration, len(data))
	if err != nil {
		return err
	}
	copy(buf, data)
	return commit()
}

// Alloc reserves the block for one variable directly in shared memory so
// the simulation can compute into it (the zero-copy path). Call the
// returned commit function when the data is complete.
func (c *Client) Alloc(variable string, iteration int) ([]byte, func() error, error) {
	v, ok := c.node.cfg.Variables[variable]
	if !ok {
		return nil, nil, fmt.Errorf("damaris: unknown variable %q", variable)
	}
	return c.allocChecked(variable, iteration, v.Layout.SizeBytes())
}

func (c *Client) allocChecked(variable string, iteration, size int) ([]byte, func() error, error) {
	buf, commit, err := c.alloc(variable, iteration, size)
	if err != nil {
		return nil, nil, err
	}
	return buf, commit, nil
}

func (c *Client) alloc(variable string, iteration, size int) ([]byte, func() error, error) {
	n := c.node
	key := skipKey{c.source, iteration}
	n.skipMu.RLock()
	skip := n.skipped[key]
	n.skipMu.RUnlock()
	if skip {
		return nil, nil, ErrSkipped
	}

	block, err := n.seg.Alloc(size)
	if errors.Is(err, shm.ErrNoSpace) {
		// The paper's policy: drop the iteration rather than block the
		// simulation.
		n.skipMu.Lock()
		n.skipped[key] = true
		n.skipMu.Unlock()
		n.stats.skippedWrites.Add(1)
		return nil, nil, ErrSkipped
	}
	if err != nil {
		return nil, nil, err
	}
	commit := func() error {
		old, replaced := n.index.Put(meta.BlockRef{
			Key:  meta.BlockKey{Variable: variable, Source: c.source, Iteration: iteration},
			Size: size,
			Data: block,
		})
		if replaced {
			old.Data.(*shm.Block).Free()
		}
		n.stats.blocksWritten.Add(1)
		n.stats.bytesWritten.Add(int64(size))
		n.queue.Send(Event{Kind: EventWrite, Source: c.source, Iteration: iteration, Name: variable})
		return nil
	}
	return block.Bytes(), commit, nil
}

// Signal sends a named event to the dedicated core, triggering the
// plugins bound to that event name.
func (c *Client) Signal(name string, iteration int) {
	c.node.queue.Send(Event{Kind: EventSignal, Source: c.source, Iteration: iteration, Name: name})
}

// EndIteration marks this client's step complete. When every client of
// the node has ended the iteration, the dedicated core runs the
// end-of-iteration plugins and frees the iteration's blocks.
func (c *Client) EndIteration(iteration int) {
	c.node.queue.Send(Event{Kind: EventEndIteration, Source: c.source, Iteration: iteration})
}
