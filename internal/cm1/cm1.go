// Package cm1 is a proxy for the CM1 atmospheric model (Bryan & Fritsch
// 2002) used by the paper's evaluation: a 3-D moist thermodynamic field
// set (potential temperature θ, water vapor qv, winds u/v/w) advanced by
// upwind advection, diffusion and a buoyancy update, decomposed in
// x-slabs across MPI ranks with periodic halo exchange.
//
// Like the real CM1, it is bulk-synchronous with very predictable
// compute phases, and every rank periodically outputs all of its fields
// — the workload that drives experiments E1–E5.
package cm1

import (
	"fmt"
	"math"

	"repro/internal/compress"
	"repro/internal/insitu"
	"repro/internal/mpi"
)

// Params configures the proxy.
type Params struct {
	// Local grid size per rank (x is the decomposed dimension).
	NX, NY, NZ int
	// DX is the grid spacing, DT the time step (CFL: U*DT/DX < 1).
	DX, DT float64
	// U is the constant zonal advection wind.
	U float64
	// Nu is the diffusion coefficient.
	Nu float64
	// ThetaRef is the reference potential temperature (K).
	ThetaRef float64
}

// DefaultParams returns a stable small configuration.
func DefaultParams() Params {
	return Params{NX: 16, NY: 16, NZ: 12, DX: 1, DT: 0.2, U: 1, Nu: 0.05, ThetaRef: 300}
}

// Validate checks grid and stability constraints.
func (p Params) Validate() error {
	if p.NX < 3 || p.NY < 3 || p.NZ < 3 {
		return fmt.Errorf("cm1: grid %dx%dx%d too small", p.NX, p.NY, p.NZ)
	}
	if p.DT <= 0 || p.DX <= 0 {
		return fmt.Errorf("cm1: non-positive DT/DX")
	}
	if cfl := p.U * p.DT / p.DX; cfl >= 1 {
		return fmt.Errorf("cm1: CFL %v >= 1, unstable", cfl)
	}
	if 6*p.Nu*p.DT/(p.DX*p.DX) >= 1 {
		return fmt.Errorf("cm1: diffusion number too large")
	}
	return nil
}

// Model is one rank's share of the simulation.
type Model struct {
	P    Params
	comm *mpi.Comm // nil for a serial run

	theta, qv, w insitu.Field
	scratch      []float64
	step         int
}

// New initializes the model with a warm bubble centered in the global
// domain and a moisture layer. comm may be nil for serial runs; with a
// communicator, ranks decompose the global x-axis.
func New(p Params, comm *mpi.Comm) (*Model, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	m := &Model{
		P:       p,
		comm:    comm,
		theta:   insitu.NewField("theta", p.NZ, p.NY, p.NX),
		qv:      insitu.NewField("qv", p.NZ, p.NY, p.NX),
		w:       insitu.NewField("w", p.NZ, p.NY, p.NX),
		scratch: make([]float64, p.NZ*p.NY*p.NX),
	}
	rank, size := 0, 1
	if comm != nil {
		rank, size = comm.Rank(), comm.Size()
	}
	globalNX := p.NX * size
	cx := float64(globalNX)/2 - 0.5
	cy := float64(p.NY)/2 - 0.5
	cz := float64(p.NZ)/3 - 0.5
	radius := float64(minInt(globalNX, minInt(p.NY, p.NZ))) / 4
	for k := 0; k < p.NZ; k++ {
		for j := 0; j < p.NY; j++ {
			for i := 0; i < p.NX; i++ {
				gx := float64(rank*p.NX + i)
				d := math.Sqrt(sq(gx-cx)+sq(float64(j)-cy)+sq(float64(k)-cz)) / radius
				// Warm bubble: +2 K perturbation with cosine falloff.
				pert := 0.0
				if d < 1 {
					pert = 2 * sq(math.Cos(math.Pi*d/2))
				}
				m.theta.Set(k, j, i, p.ThetaRef+pert)
				// Moisture decays with height.
				m.qv.Set(k, j, i, 0.014*math.Exp(-float64(k)/float64(p.NZ)*3))
			}
		}
	}
	return m, nil
}

func sq(x float64) float64 { return x * x }

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// Step advances the model one time step: halo exchange, upwind
// x-advection plus diffusion of θ and qv, then the buoyancy update of w.
func (m *Model) Step() {
	m.advectDiffuse(&m.theta)
	m.advectDiffuse(&m.qv)
	m.buoyancy()
	m.step++
}

// Iteration returns the number of completed steps.
func (m *Model) Iteration() int { return m.step }

// haloTag distinguishes the two exchange directions.
const (
	tagToRight = 201
	tagToLeft  = 202
)

// exchangeHalo returns the x-neighbor planes of f: left[k][j] is the
// plane at global index i-1 of the local i=0 column, right likewise for
// i = NX. Periodic in x, both across ranks and globally.
func (m *Model) exchangeHalo(f *insitu.Field) (left, right []float64) {
	p := m.P
	planeLen := p.NZ * p.NY
	myLeft := make([]float64, planeLen)  // my i=0 plane
	myRight := make([]float64, planeLen) // my i=NX-1 plane
	for k := 0; k < p.NZ; k++ {
		for j := 0; j < p.NY; j++ {
			myLeft[k*p.NY+j] = f.At(k, j, 0)
			myRight[k*p.NY+j] = f.At(k, j, p.NX-1)
		}
	}
	if m.comm == nil || m.comm.Size() == 1 {
		return myRight, myLeft // periodic wrap onto self
	}
	size := m.comm.Size()
	leftRank := (m.comm.Rank() + size - 1) % size
	rightRank := (m.comm.Rank() + 1) % size
	m.comm.Send(rightRank, tagToRight, compress.Float64Bytes(myRight))
	m.comm.Send(leftRank, tagToLeft, compress.Float64Bytes(myLeft))
	fromLeft, _ := m.comm.Recv(leftRank, tagToRight)
	fromRight, _ := m.comm.Recv(rightRank, tagToLeft)
	return compress.BytesFloat64(fromLeft), compress.BytesFloat64(fromRight)
}

// advectDiffuse applies upwind x-advection by U and a 3-D Laplacian
// diffusion, periodic in every dimension.
func (m *Model) advectDiffuse(f *insitu.Field) {
	p := m.P
	left, right := m.exchangeHalo(f)
	cAdv := p.U * p.DT / p.DX
	cDif := p.Nu * p.DT / (p.DX * p.DX)
	at := func(k, j, i int) float64 {
		// Periodic lookups with the x halo planes.
		k = (k + p.NZ) % p.NZ
		j = (j + p.NY) % p.NY
		if i < 0 {
			return left[k*p.NY+j]
		}
		if i >= p.NX {
			return right[k*p.NY+j]
		}
		return f.At(k, j, i)
	}
	for k := 0; k < p.NZ; k++ {
		for j := 0; j < p.NY; j++ {
			for i := 0; i < p.NX; i++ {
				c := f.At(k, j, i)
				upwind := c - at(k, j, i-1)
				lap := at(k, j, i-1) + at(k, j, i+1) +
					at(k, j-1, i) + at(k, j+1, i) +
					at(k-1, j, i) + at(k+1, j, i) - 6*c
				m.scratch[(k*p.NY+j)*p.NX+i] = c - cAdv*upwind + cDif*lap
			}
		}
	}
	copy(f.Data, m.scratch)
}

// buoyancy updates w from the local θ anomaly (diagnostic vertical
// motion; it does not feed back into θ so that mass conservation stays
// exactly testable).
func (m *Model) buoyancy() {
	const g = 9.81
	p := m.P
	for idx, th := range m.theta.Data {
		m.w.Data[idx] += p.DT * g * (th - p.ThetaRef) / p.ThetaRef
	}
}

// Fields returns the rank's output variables in a stable order.
func (m *Model) Fields() []insitu.Field {
	return []insitu.Field{m.theta, m.qv, m.w}
}

// Theta exposes the temperature field (analysis, tests).
func (m *Model) Theta() insitu.Field { return m.theta }

// LocalMass returns the rank-local sum of θ (a conserved quantity under
// periodic advection-diffusion).
func (m *Model) LocalMass() float64 {
	sum := 0.0
	for _, v := range m.theta.Data {
		sum += v
	}
	return sum
}

// GlobalMass reduces LocalMass across ranks (serial: local value).
func (m *Model) GlobalMass() float64 {
	if m.comm == nil {
		return m.LocalMass()
	}
	return m.comm.Allreduce(mpi.Sum, m.LocalMass())
}

// Checksum folds every field into one float for determinism tests.
func (m *Model) Checksum() float64 {
	sum := 0.0
	for _, f := range m.Fields() {
		for i, v := range f.Data {
			sum += v * float64(i%97+1)
		}
	}
	return sum
}
