package cm1

import (
	"math"
	"testing"

	"repro/internal/mpi"
)

func TestValidate(t *testing.T) {
	if err := DefaultParams().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := DefaultParams()
	bad.DT = 2 // CFL violation at U=1, DX=1
	if err := bad.Validate(); err == nil {
		t.Fatal("unstable params accepted")
	}
	tiny := DefaultParams()
	tiny.NX = 1
	if err := tiny.Validate(); err == nil {
		t.Fatal("tiny grid accepted")
	}
}

func TestInitialBubble(t *testing.T) {
	m, err := New(DefaultParams(), nil)
	if err != nil {
		t.Fatal(err)
	}
	th := m.Theta()
	max, min := th.Data[0], th.Data[0]
	for _, v := range th.Data {
		if v > max {
			max = v
		}
		if v < min {
			min = v
		}
	}
	if min < 299.999 || min > 300.001 {
		t.Fatalf("background theta = %v", min)
	}
	if max < 301 || max > 302.001 {
		t.Fatalf("bubble peak = %v, want ≈ 302", max)
	}
}

func TestMassConservationSerial(t *testing.T) {
	m, _ := New(DefaultParams(), nil)
	before := m.GlobalMass()
	for s := 0; s < 50; s++ {
		m.Step()
	}
	after := m.GlobalMass()
	if rel := math.Abs(after-before) / before; rel > 1e-12 {
		t.Fatalf("theta mass drifted by %v", rel)
	}
	if m.Iteration() != 50 {
		t.Fatalf("iteration = %d", m.Iteration())
	}
}

func TestMassConservationParallel(t *testing.T) {
	mpi.Run(4, func(c *mpi.Comm) {
		m, err := New(DefaultParams(), c)
		if err != nil {
			t.Error(err)
			return
		}
		before := m.GlobalMass()
		for s := 0; s < 20; s++ {
			m.Step()
		}
		after := m.GlobalMass()
		if rel := math.Abs(after-before) / before; rel > 1e-12 {
			t.Errorf("rank %d: mass drift %v", c.Rank(), rel)
		}
	})
}

func TestSerialParallelEquivalence(t *testing.T) {
	// The same global domain computed serially and on 4 ranks must agree
	// bitwise: halo exchange must be exactly transparent.
	const ranks = 4
	p := DefaultParams()
	serialParams := p
	serialParams.NX = p.NX * ranks
	serial, _ := New(serialParams, nil)
	for s := 0; s < 10; s++ {
		serial.Step()
	}

	gathered := make([][]float64, ranks)
	mpi.Run(ranks, func(c *mpi.Comm) {
		m, _ := New(p, c)
		for s := 0; s < 10; s++ {
			m.Step()
		}
		// Send local theta to rank 0.
		parts := c.Gather(0, float64sToBytes(m.Theta().Data))
		if c.Rank() == 0 {
			for r := 0; r < ranks; r++ {
				gathered[r] = bytesToFloat64s(parts[r])
			}
		}
	})

	for r := 0; r < ranks; r++ {
		local := gathered[r]
		for k := 0; k < p.NZ; k++ {
			for j := 0; j < p.NY; j++ {
				for i := 0; i < p.NX; i++ {
					want := serial.Theta().At(k, j, i+r*p.NX)
					got := local[(k*p.NY+j)*p.NX+i]
					if want != got {
						t.Fatalf("rank %d cell (%d,%d,%d): serial %v parallel %v",
							r, k, j, i, want, got)
					}
				}
			}
		}
	}
}

func TestDeterminism(t *testing.T) {
	run := func() float64 {
		m, _ := New(DefaultParams(), nil)
		for s := 0; s < 25; s++ {
			m.Step()
		}
		return m.Checksum()
	}
	if run() != run() {
		t.Fatal("serial run not deterministic")
	}
}

func TestBubbleAdvectsDownwind(t *testing.T) {
	p := DefaultParams()
	p.Nu = 0 // pure advection keeps the bubble tight
	m, _ := New(p, nil)
	peakX := func() int {
		best, bi := -1.0, 0
		th := m.Theta()
		k, j := p.NZ/3, p.NY/2
		for i := 0; i < p.NX; i++ {
			if v := th.At(k, j, i); v > best {
				best, bi = v, i
			}
		}
		return bi
	}
	x0 := peakX()
	for s := 0; s < 20; s++ { // 20 steps × U·DT/DX = 4 cells
		m.Step()
	}
	x1 := peakX()
	moved := (x1 - x0 + p.NX) % p.NX
	if moved < 2 || moved > 6 {
		t.Fatalf("bubble moved %d cells downwind, want ≈ 4", moved)
	}
}

func TestBuoyancyLiftsBubble(t *testing.T) {
	m, _ := New(DefaultParams(), nil)
	for s := 0; s < 10; s++ {
		m.Step()
	}
	// w must be positive where the bubble is and ≈0 far away.
	p := m.P
	wAtBubble := m.w.At(p.NZ/3, p.NY/2, p.NX/2)
	wFar := m.w.At(p.NZ-1, 0, 0)
	if wAtBubble <= 0 {
		t.Fatalf("no updraft at bubble: w = %v", wAtBubble)
	}
	if math.Abs(wFar) > wAtBubble/10 {
		t.Fatalf("spurious vertical motion far from bubble: %v vs %v", wFar, wAtBubble)
	}
}

func TestFieldsStableOrder(t *testing.T) {
	m, _ := New(DefaultParams(), nil)
	fs := m.Fields()
	if len(fs) != 3 || fs[0].Name != "theta" || fs[1].Name != "qv" || fs[2].Name != "w" {
		t.Fatalf("fields = %v", fs)
	}
	for _, f := range fs {
		if err := f.Validate(); err != nil {
			t.Fatal(err)
		}
	}
}

func BenchmarkStep(b *testing.B) {
	p := DefaultParams()
	p.NX, p.NY, p.NZ = 32, 32, 24
	m, _ := New(p, nil)
	for i := 0; i < b.N; i++ {
		m.Step()
	}
}

func float64sToBytes(xs []float64) []byte {
	out := make([]byte, len(xs)*8)
	for i, x := range xs {
		u := math.Float64bits(x)
		for b := 0; b < 8; b++ {
			out[i*8+b] = byte(u >> (8 * b))
		}
	}
	return out
}

func bytesToFloat64s(b []byte) []float64 {
	out := make([]float64, len(b)/8)
	for i := range out {
		var u uint64
		for k := 0; k < 8; k++ {
			u |= uint64(b[i*8+k]) << (8 * k)
		}
		out[i] = math.Float64frombits(u)
	}
	return out
}
