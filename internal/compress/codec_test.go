package compress

import (
	"bytes"
	"encoding/binary"
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func roundTrip(t *testing.T, c Codec, src []byte, elemSize int) []byte {
	t.Helper()
	enc, err := c.Encode(src, elemSize)
	if err != nil {
		t.Fatalf("%s encode: %v", c.Name(), err)
	}
	dec, err := c.Decode(enc, len(src), elemSize)
	if err != nil {
		t.Fatalf("%s decode: %v", c.Name(), err)
	}
	if !bytes.Equal(src, dec) {
		t.Fatalf("%s round trip mismatch (len %d vs %d)", c.Name(), len(src), len(dec))
	}
	return enc
}

// smoothField returns a CM1-like smooth 3-D field flattened to bytes.
func smoothField(n int) []byte {
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = 300 + 5*math.Sin(float64(i)/40) + 0.01*math.Cos(float64(i)/7)
	}
	return Float64Bytes(xs)
}

// sparseField returns a mostly-zero field (like cloud water content).
func sparseField(n int) []byte {
	xs := make([]float64, n)
	for i := n / 2; i < n/2+n/50; i++ {
		xs[i] = 1e-3 * float64(i%7)
	}
	return Float64Bytes(xs)
}

func TestByName(t *testing.T) {
	for _, name := range []string{"none", "gorilla", "delta", "rle", "flate", ""} {
		c, err := ByName(name)
		if err != nil {
			t.Fatalf("ByName(%q): %v", name, err)
		}
		if name != "" && c.Name() != name {
			t.Errorf("ByName(%q).Name() = %q", name, c.Name())
		}
	}
	if _, err := ByName("zstd"); !errors.Is(err, ErrUnknownCodec) {
		t.Errorf("unknown codec should wrap ErrUnknownCodec, got %v", err)
	}
}

func TestNamesAreRegistered(t *testing.T) {
	for _, name := range Names() {
		c, err := ByName(name)
		if err != nil {
			t.Fatalf("Names() lists unregistered %q: %v", name, err)
		}
		if c.Name() != name {
			t.Errorf("ByName(%q).Name() = %q", name, c.Name())
		}
	}
}

func TestNoneRoundTrip(t *testing.T) {
	src := []byte("hello damaris")
	enc := roundTrip(t, None{}, src, 1)
	if len(enc) != len(src) {
		t.Fatalf("identity codec changed the length")
	}
}

func TestGorillaRoundTripFloat64(t *testing.T) {
	roundTrip(t, Gorilla{}, smoothField(10000), 8)
	roundTrip(t, Gorilla{}, sparseField(10000), 8)
}

func TestGorillaRoundTripFloat32(t *testing.T) {
	xs := make([]byte, 4000)
	for i := 0; i < 1000; i++ {
		binary.LittleEndian.PutUint32(xs[i*4:], math.Float32bits(float32(i)*0.5))
	}
	roundTrip(t, Gorilla{}, xs, 4)
}

func TestGorillaCompressesSmoothData(t *testing.T) {
	src := sparseField(100000)
	enc, _ := Gorilla{}.Encode(src, 8)
	if r := Ratio(len(src), len(enc)); r < 4 {
		t.Fatalf("gorilla ratio on sparse field = %.2f, want >= 4", r)
	}
}

func TestGorillaRejectsBadElemSize(t *testing.T) {
	if _, err := (Gorilla{}).Encode(make([]byte, 16), 2); err == nil {
		t.Fatal("elemSize 2 should fail")
	}
	if _, err := (Gorilla{}).Decode(nil, 16, 3); err == nil {
		t.Fatal("decode with elemSize 3 should fail")
	}
}

func TestGorillaPropertyFloat64(t *testing.T) {
	if err := quick.Check(func(raw []float64) bool {
		for i, v := range raw {
			if math.IsNaN(v) {
				raw[i] = 0 // NaN payloads round-trip bitwise, but avoid ==-compare pitfalls
			}
		}
		src := Float64Bytes(raw)
		enc, err := Gorilla{}.Encode(src, 8)
		if err != nil {
			return false
		}
		dec, err := Gorilla{}.Decode(enc, len(src), 8)
		return err == nil && bytes.Equal(src, dec)
	}, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestDeltaRoundTrip(t *testing.T) {
	vals := []int64{0, 1, 2, 3, 100, 99, 98, -5, 1 << 40, math.MaxInt64, math.MinInt64}
	src := make([]byte, len(vals)*8)
	for i, v := range vals {
		binary.LittleEndian.PutUint64(src[i*8:], uint64(v))
	}
	enc := roundTrip(t, Delta{}, src, 8)
	if len(enc) >= len(src) {
		t.Logf("delta did not shrink adversarial data (fine): %d -> %d", len(src), len(enc))
	}
}

func TestDeltaCompressesMonotonicData(t *testing.T) {
	src := make([]byte, 8*10000)
	for i := 0; i < 10000; i++ {
		binary.LittleEndian.PutUint64(src[i*8:], uint64(1000000+i*3))
	}
	enc, _ := Delta{}.Encode(src, 8)
	if r := Ratio(len(src), len(enc)); r < 6 {
		t.Fatalf("delta ratio on monotonic data = %.2f, want >= 6", r)
	}
}

func TestDeltaProperty(t *testing.T) {
	if err := quick.Check(func(vals []int64) bool {
		src := make([]byte, len(vals)*8)
		for i, v := range vals {
			binary.LittleEndian.PutUint64(src[i*8:], uint64(v))
		}
		enc, err := Delta{}.Encode(src, 8)
		if err != nil {
			return false
		}
		dec, err := Delta{}.Decode(enc, len(src), 8)
		return err == nil && bytes.Equal(src, dec)
	}, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestRLERoundTrip(t *testing.T) {
	roundTrip(t, RLE{}, bytes.Repeat([]byte{7}, 1000), 1)
	roundTrip(t, RLE{}, []byte{1, 2, 3, 4, 5}, 1)
	roundTrip(t, RLE{}, nil, 1)
}

func TestRLECompressesRuns(t *testing.T) {
	src := bytes.Repeat([]byte{0}, 100000)
	enc, _ := RLE{}.Encode(src, 1)
	if r := Ratio(len(src), len(enc)); r < 100 {
		t.Fatalf("RLE ratio on zeros = %.2f, want >= 100", r)
	}
}

func TestRLEProperty(t *testing.T) {
	if err := quick.Check(func(src []byte) bool {
		enc, err := RLE{}.Encode(src, 1)
		if err != nil {
			return false
		}
		dec, err := RLE{}.Decode(enc, len(src), 1)
		return err == nil && bytes.Equal(src, dec)
	}, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestFlateRoundTrip(t *testing.T) {
	roundTrip(t, Flate{}, smoothField(5000), 8)
	roundTrip(t, Flate{}, []byte("abc"), 1)
}

func TestRatio(t *testing.T) {
	if Ratio(600, 100) != 6 {
		t.Fatal("ratio arithmetic")
	}
	if Ratio(10, 0) != 0 {
		t.Fatal("zero-length encode should give ratio 0")
	}
}

func TestFloat64BytesRoundTrip(t *testing.T) {
	xs := []float64{1.5, -2.25, 0, math.Pi}
	ys := BytesFloat64(Float64Bytes(xs))
	for i := range xs {
		if xs[i] != ys[i] {
			t.Fatalf("float bytes round trip: %v vs %v", xs, ys)
		}
	}
}

func BenchmarkGorillaEncodeSmooth(b *testing.B) {
	src := smoothField(100000)
	b.SetBytes(int64(len(src)))
	for i := 0; i < b.N; i++ {
		Gorilla{}.Encode(src, 8)
	}
}

func BenchmarkFlateEncodeSmooth(b *testing.B) {
	src := smoothField(100000)
	b.SetBytes(int64(len(src)))
	for i := 0; i < b.N; i++ {
		Flate{}.Encode(src, 1)
	}
}
