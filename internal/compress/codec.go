package compress

import (
	"bytes"
	"compress/flate"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"math/bits"
)

// Codec is a lossless byte-level compressor. elemSize tells codecs that
// exploit element structure (Gorilla) how to segment src; byte-oriented
// codecs ignore it.
type Codec interface {
	// Name is the registry key stored in SDF dataset headers.
	Name() string
	// Encode compresses src (len(src) must be a multiple of elemSize for
	// element-structured codecs).
	Encode(src []byte, elemSize int) ([]byte, error)
	// Decode decompresses enc; dstSize is the expected decoded length.
	Decode(enc []byte, dstSize, elemSize int) ([]byte, error)
}

// ErrUnknownCodec is returned by ByName for a name outside the
// registry. Consumers that parse codec names out of stored artifacts
// (the storage frame header, SDF dataset headers) test with errors.Is,
// so a corrupt or foreign codec name is reported the same way
// everywhere.
var ErrUnknownCodec = errors.New("compress: unknown codec")

// Names lists the registered codec names, in registry order ("" is an
// alias for "none" and is not listed).
func Names() []string {
	return []string{"none", "gorilla", "delta", "rle", "flate"}
}

// ByName returns the registered codec with the given name. Unknown
// names return an error wrapping ErrUnknownCodec.
func ByName(name string) (Codec, error) {
	switch name {
	case "none", "":
		return None{}, nil
	case "gorilla":
		return Gorilla{}, nil
	case "delta":
		return Delta{}, nil
	case "rle":
		return RLE{}, nil
	case "flate":
		return Flate{}, nil
	}
	return nil, fmt.Errorf("%w %q", ErrUnknownCodec, name)
}

// Ratio returns rawLen/encLen, the paper's "600%" being 6.0.
func Ratio(rawLen, encLen int) float64 {
	if encLen == 0 {
		return 0
	}
	return float64(rawLen) / float64(encLen)
}

// None is the identity codec.
type None struct{}

// Name implements Codec.
func (None) Name() string { return "none" }

// Encode implements Codec.
func (None) Encode(src []byte, _ int) ([]byte, error) {
	return append([]byte(nil), src...), nil
}

// Decode implements Codec.
func (None) Decode(enc []byte, dstSize, _ int) ([]byte, error) {
	if len(enc) != dstSize {
		return nil, fmt.Errorf("compress: none codec size mismatch: %d vs %d", len(enc), dstSize)
	}
	return append([]byte(nil), enc...), nil
}

// Gorilla is an XOR-based float codec: each value is XORed with its
// predecessor; the result is encoded as (control bits, leading-zero
// count, significant bits). Smooth fields XOR to mostly-zero words.
type Gorilla struct{}

// Name implements Codec.
func (Gorilla) Name() string { return "gorilla" }

// Encode implements Codec.
func (Gorilla) Encode(src []byte, elemSize int) ([]byte, error) {
	switch elemSize {
	case 8:
		return gorillaEncode(src, 8), nil
	case 4:
		return gorillaEncode(src, 4), nil
	default:
		return nil, fmt.Errorf("compress: gorilla supports 4- or 8-byte elements, got %d", elemSize)
	}
}

// Decode implements Codec.
func (Gorilla) Decode(enc []byte, dstSize, elemSize int) ([]byte, error) {
	if elemSize != 4 && elemSize != 8 {
		return nil, fmt.Errorf("compress: gorilla supports 4- or 8-byte elements, got %d", elemSize)
	}
	return gorillaDecode(enc, dstSize, elemSize)
}

func gorillaEncode(src []byte, width int) []byte {
	bitsPerWord := uint(width * 8)
	lzBits := uint(6) // enough for 0..63
	if width == 4 {
		lzBits = 5
	}
	n := len(src) / width
	var w bitWriter
	var prev uint64
	for i := 0; i < n; i++ {
		v := readWord(src[i*width:], width)
		if i == 0 {
			w.writeBits(v, bitsPerWord)
			prev = v
			continue
		}
		x := v ^ prev
		prev = v
		if x == 0 {
			w.writeBit(0)
			continue
		}
		w.writeBit(1)
		lead := uint(bits.LeadingZeros64(x)) - (64 - bitsPerWord)
		if lead >= bitsPerWord {
			lead = bitsPerWord - 1
		}
		sig := bitsPerWord - lead
		w.writeBits(uint64(lead), lzBits)
		w.writeBits(x, sig)
	}
	return w.finish()
}

func gorillaDecode(enc []byte, dstSize, width int) ([]byte, error) {
	bitsPerWord := uint(width * 8)
	lzBits := uint(6)
	if width == 4 {
		lzBits = 5
	}
	n := dstSize / width
	out := make([]byte, dstSize)
	r := bitReader{buf: enc}
	var prev uint64
	for i := 0; i < n; i++ {
		if i == 0 {
			v, ok := r.readBits(bitsPerWord)
			if !ok {
				return nil, io.ErrUnexpectedEOF
			}
			prev = v
			writeWord(out[0:], v, width)
			continue
		}
		ctrl, ok := r.readBit()
		if !ok {
			return nil, io.ErrUnexpectedEOF
		}
		if ctrl == 0 {
			writeWord(out[i*width:], prev, width)
			continue
		}
		lead, ok := r.readBits(lzBits)
		if !ok {
			return nil, io.ErrUnexpectedEOF
		}
		sig := bitsPerWord - uint(lead)
		x, ok := r.readBits(sig)
		if !ok {
			return nil, io.ErrUnexpectedEOF
		}
		prev ^= x
		writeWord(out[i*width:], prev, width)
	}
	return out, nil
}

func readWord(b []byte, width int) uint64 {
	if width == 8 {
		return binary.LittleEndian.Uint64(b)
	}
	return uint64(binary.LittleEndian.Uint32(b))
}

func writeWord(b []byte, v uint64, width int) {
	if width == 8 {
		binary.LittleEndian.PutUint64(b, v)
		return
	}
	binary.LittleEndian.PutUint32(b, uint32(v))
}

// Delta encodes 8-byte integers as zig-zag deltas in varint form.
type Delta struct{}

// Name implements Codec.
func (Delta) Name() string { return "delta" }

// Encode implements Codec.
func (Delta) Encode(src []byte, elemSize int) ([]byte, error) {
	if elemSize != 8 {
		return nil, fmt.Errorf("compress: delta supports 8-byte integers, got %d", elemSize)
	}
	n := len(src) / 8
	out := make([]byte, 0, len(src)/4)
	var prev int64
	var tmp [binary.MaxVarintLen64]byte
	for i := 0; i < n; i++ {
		v := int64(binary.LittleEndian.Uint64(src[i*8:]))
		d := v - prev
		prev = v
		k := binary.PutVarint(tmp[:], d)
		out = append(out, tmp[:k]...)
	}
	return out, nil
}

// Decode implements Codec.
func (Delta) Decode(enc []byte, dstSize, elemSize int) ([]byte, error) {
	if elemSize != 8 {
		return nil, fmt.Errorf("compress: delta supports 8-byte integers, got %d", elemSize)
	}
	n := dstSize / 8
	out := make([]byte, dstSize)
	var prev int64
	pos := 0
	for i := 0; i < n; i++ {
		d, k := binary.Varint(enc[pos:])
		if k <= 0 {
			return nil, io.ErrUnexpectedEOF
		}
		pos += k
		prev += d
		binary.LittleEndian.PutUint64(out[i*8:], uint64(prev))
	}
	return out, nil
}

// RLE is byte-level run-length encoding: (count-1, value) pairs with runs
// up to 256.
type RLE struct{}

// Name implements Codec.
func (RLE) Name() string { return "rle" }

// Encode implements Codec.
func (RLE) Encode(src []byte, _ int) ([]byte, error) {
	out := make([]byte, 0, len(src)/8+16)
	for i := 0; i < len(src); {
		j := i + 1
		for j < len(src) && src[j] == src[i] && j-i < 256 {
			j++
		}
		out = append(out, byte(j-i-1), src[i])
		i = j
	}
	return out, nil
}

// Decode implements Codec.
func (RLE) Decode(enc []byte, dstSize, _ int) ([]byte, error) {
	if len(enc)%2 != 0 {
		return nil, fmt.Errorf("compress: truncated RLE stream")
	}
	out := make([]byte, 0, dstSize)
	for i := 0; i < len(enc); i += 2 {
		run := int(enc[i]) + 1
		for k := 0; k < run; k++ {
			out = append(out, enc[i+1])
		}
	}
	if len(out) != dstSize {
		return nil, fmt.Errorf("compress: RLE decoded %d bytes, want %d", len(out), dstSize)
	}
	return out, nil
}

// Flate wraps the stdlib DEFLATE at the default level.
type Flate struct{}

// Name implements Codec.
func (Flate) Name() string { return "flate" }

// Encode implements Codec.
func (Flate) Encode(src []byte, _ int) ([]byte, error) {
	var buf bytes.Buffer
	fw, err := flate.NewWriter(&buf, flate.DefaultCompression)
	if err != nil {
		return nil, err
	}
	if _, err := fw.Write(src); err != nil {
		return nil, err
	}
	if err := fw.Close(); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// Decode implements Codec.
func (Flate) Decode(enc []byte, dstSize, _ int) ([]byte, error) {
	fr := flate.NewReader(bytes.NewReader(enc))
	defer fr.Close()
	out := make([]byte, 0, dstSize)
	buf := make([]byte, 32<<10)
	for {
		n, err := fr.Read(buf)
		out = append(out, buf[:n]...)
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
	}
	if len(out) != dstSize {
		return nil, fmt.Errorf("compress: flate decoded %d bytes, want %d", len(out), dstSize)
	}
	return out, nil
}

// Float64Bytes reinterprets a float64 slice as little-endian bytes
// (helper for codec callers and tests).
func Float64Bytes(xs []float64) []byte {
	out := make([]byte, len(xs)*8)
	for i, x := range xs {
		binary.LittleEndian.PutUint64(out[i*8:], math.Float64bits(x))
	}
	return out
}

// BytesFloat64 is the inverse of Float64Bytes.
func BytesFloat64(b []byte) []float64 {
	out := make([]float64, len(b)/8)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[i*8:]))
	}
	return out
}
