// Package compress implements the lossless codecs used by the data-
// management plugins (§IV.D: "we used this spare time to add data
// compression in files, and achieved a 600% compression ratio without any
// overhead on the simulation").
//
// Codecs:
//
//   - Gorilla: XOR-based float compression (Pelkonen et al., VLDB 2015
//     style) specialized for smooth scientific fields, for float64 and
//     float32 elements;
//   - Delta: zig-zag delta + varint for integer data;
//   - RLE: byte run-length encoding for masks and mostly-constant data;
//   - Flate: the stdlib DEFLATE as a general-purpose baseline.
//
// All codecs operate on raw []byte with a known element type, so the SDF
// writer can apply them per dataset.
package compress

// bitWriter packs bits most-significant-first into a byte slice.
type bitWriter struct {
	buf  []byte
	cur  byte
	nCur uint // bits used in cur
}

func (w *bitWriter) writeBit(b uint64) {
	w.cur = w.cur<<1 | byte(b&1)
	w.nCur++
	if w.nCur == 8 {
		w.buf = append(w.buf, w.cur)
		w.cur, w.nCur = 0, 0
	}
}

// writeBits writes the low n bits of v, most significant first.
func (w *bitWriter) writeBits(v uint64, n uint) {
	for i := int(n) - 1; i >= 0; i-- {
		w.writeBit(v >> uint(i))
	}
}

// finish flushes the partial byte (zero-padded) and returns the buffer.
func (w *bitWriter) finish() []byte {
	if w.nCur > 0 {
		w.buf = append(w.buf, w.cur<<(8-w.nCur))
		w.cur, w.nCur = 0, 0
	}
	return w.buf
}

// bitReader reads bits most-significant-first from a byte slice.
type bitReader struct {
	buf []byte
	pos uint // bit position
}

func (r *bitReader) readBit() (uint64, bool) {
	byteIdx := r.pos >> 3
	if int(byteIdx) >= len(r.buf) {
		return 0, false
	}
	bit := uint64(r.buf[byteIdx]>>(7-r.pos&7)) & 1
	r.pos++
	return bit, true
}

func (r *bitReader) readBits(n uint) (uint64, bool) {
	var v uint64
	for i := uint(0); i < n; i++ {
		b, ok := r.readBit()
		if !ok {
			return 0, false
		}
		v = v<<1 | b
	}
	return v, true
}
