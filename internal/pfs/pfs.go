// Package pfs models a Lustre-like parallel file system as a discrete-
// event system: a single metadata server (MDS) serializing namespace
// operations, and a set of object storage targets (OSTs) serving
// concurrent write streams under processor sharing with pattern-dependent
// efficiency.
//
// The model reproduces the three I/O regimes of the paper's evaluation:
//
//   - file-per-process: one small file per rank → metadata storm at the
//     MDS and dozens of interleaved streams per OST (Pattern SmallFile);
//   - collective I/O: one shared file → extent-lock serialization collapses
//     per-OST efficiency (Pattern SharedFile), and barriered rounds let
//     stragglers dominate;
//   - dedicated cores (Damaris): one big sequential file per node → few
//     high-efficiency streams per OST (Pattern BigSequential).
//
// Per-request jitter (log-normal body, Pareto tail) and per-phase per-OST
// congestion factors model the variability the paper attributes to the
// shared storage system.
package pfs

import (
	"fmt"
	"math"

	"repro/internal/des"
	"repro/internal/rng"
	"repro/internal/topology"
)

// Pattern classifies a write stream's access pattern, which determines how
// efficiently an OST serves it under concurrency.
type Pattern int

const (
	// BigSequential is a large contiguous stream into its own file.
	BigSequential Pattern = iota
	// SmallFile is a per-process file written in small chunks.
	SmallFile
	// SharedFile is a write into a file shared with other clients,
	// subject to extent-lock serialization.
	SharedFile
)

// String returns the pattern name.
func (p Pattern) String() string {
	switch p {
	case BigSequential:
		return "big-sequential"
	case SmallFile:
		return "small-file"
	case SharedFile:
		return "shared-file"
	default:
		return fmt.Sprintf("Pattern(%d)", int(p))
	}
}

// FS is a simulated parallel file system bound to a DES engine.
type FS struct {
	eng      *des.Engine
	params   topology.PFSParams
	bwFactor float64 // mid-run bandwidth multiplier (SetBandwidthFactor)
	mds      *des.Resource
	osts     []*ost

	totalBytes     float64
	totalBytesRead float64
	mdsOps         int

	// Union-of-activity accounting: time during which at least one
	// transfer was in flight anywhere on the file system.
	activeTransfers int
	busySince       float64
	busyTotal       float64
}

// New creates a file system model. The rng stream seeds per-OST jitter
// streams; New does not retain it.
func New(eng *des.Engine, params topology.PFSParams, r *rng.Stream) *FS {
	fs := &FS{
		eng:      eng,
		params:   params,
		bwFactor: 1,
		mds:      eng.NewResource(1),
		osts:     make([]*ost, params.OSTs),
	}
	for i := range fs.osts {
		fs.osts[i] = &ost{
			fs:         fs,
			id:         i,
			rng:        r.Child(uint64(i)),
			congestion: 1,
		}
	}
	return fs
}

// OSTCount returns the number of OSTs.
func (fs *FS) OSTCount() int { return len(fs.osts) }

// TotalBytes returns the number of bytes written so far (completed
// transfers only).
func (fs *FS) TotalBytes() float64 { return fs.totalBytes }

// TotalBytesRead returns the number of bytes read so far (completed
// transfers only).
func (fs *FS) TotalBytesRead() float64 { return fs.totalBytesRead }

// MDSOps returns the number of metadata operations served.
func (fs *FS) MDSOps() int { return fs.mdsOps }

// MDSQueueLen returns the number of requests waiting at the MDS.
func (fs *FS) MDSQueueLen() int { return fs.mds.QueueLen() }

// BeginPhase draws fresh per-OST congestion factors, modeling interference
// from other applications sharing the storage system during this I/O
// phase. Call it once per application I/O phase.
func (fs *FS) BeginPhase() {
	for _, o := range fs.osts {
		o.advance()
		if fs.params.CongestionSigma > 0 {
			o.congestion = 1 / o.rng.UnitLogNormal(fs.params.CongestionSigma)
			if o.congestion > 1 {
				// Congestion only hurts: cap the lucky draws at nominal.
				o.congestion = 1
			}
		}
		o.recompute()
	}
}

// SetBandwidthFactor scales every OST's peak bandwidth by factor (> 0,
// absolute against nominal, not cumulative) from the current virtual
// time on — the mid-run platform shift the workload scenarios schedule,
// e.g. a storage-system degradation or recovery. In-flight transfers
// drain at the old rate up to now and at the new rate afterwards.
func (fs *FS) SetBandwidthFactor(factor float64) {
	if factor <= 0 {
		return
	}
	for _, o := range fs.osts {
		o.advance()
	}
	fs.bwFactor = factor
	for _, o := range fs.osts {
		o.recompute()
	}
}

// metaOp serializes one metadata operation of the given service time at
// the MDS.
func (fs *FS) metaOp(p *des.Proc, service float64) {
	p.Acquire(fs.mds, 1)
	fs.mdsOps++
	p.Wait(service)
	fs.mds.Release(1)
}

// Create performs a file-create at the MDS (blocking).
func (fs *FS) Create(p *des.Proc) { fs.metaOp(p, fs.params.MDSCreate) }

// Open performs a file-open at the MDS (blocking).
func (fs *FS) Open(p *des.Proc) { fs.metaOp(p, fs.params.MDSOpen) }

// Close performs a file-close at the MDS (blocking).
func (fs *FS) Close(p *des.Proc) { fs.metaOp(p, fs.params.MDSClose) }

// PlaceFile chooses stripeCount distinct OSTs for a new file, mimicking
// Lustre's randomized allocator. The choice is drawn from r so placement
// is reproducible per caller.
func (fs *FS) PlaceFile(stripeCount int, r *rng.Stream) []int {
	n := len(fs.osts)
	if stripeCount >= n {
		all := make([]int, n)
		for i := range all {
			all[i] = i
		}
		return all
	}
	perm := r.Perm(n)
	return perm[:stripeCount]
}

// WriteAsync submits a whole-file write of the given size and pattern to
// one OST and returns a future completed when the transfer finishes. The
// per-file overhead (object allocation, initial seeks) is charged once.
func (fs *FS) WriteAsync(ostID int, bytes float64, pat Pattern) *des.Future {
	return fs.submit(ostID, bytes, fs.params.FileOverhead, pat)
}

// WriteChunkAsync submits one chunk of an already-open file (e.g. one
// two-phase round): no per-file overhead is charged.
func (fs *FS) WriteChunkAsync(ostID int, bytes float64, pat Pattern) *des.Future {
	return fs.submit(ostID, bytes, 0, pat)
}

// ReadAsync submits a whole-file read of the given size and pattern to
// one OST and returns a future completed when the transfer finishes.
// Reads are served by the same per-OST processor-sharing queues as
// writes — a restart competes with whatever else the storage system is
// doing — and are accounted separately (TotalBytesRead).
func (fs *FS) ReadAsync(ostID int, bytes float64, pat Pattern) *des.Future {
	return fs.submitDir(ostID, bytes, fs.params.FileOverhead, pat, true)
}

// Read blocks the process until a whole-file read of the given size and
// pattern from ostID completes.
func (fs *FS) Read(p *des.Proc, ostID int, bytes float64, pat Pattern) {
	p.Await(fs.ReadAsync(ostID, bytes, pat))
}

func (fs *FS) submit(ostID int, bytes, fileOverhead float64, pat Pattern) *des.Future {
	return fs.submitDir(ostID, bytes, fileOverhead, pat, false)
}

func (fs *FS) submitDir(ostID int, bytes, fileOverhead float64, pat Pattern, read bool) *des.Future {
	o := fs.osts[ostID]
	f := fs.eng.NewFuture()
	if bytes <= 0 {
		f.Complete()
		return f
	}
	jitter, straggle := o.drawJitter()
	start := func() {
		if fs.activeTransfers == 0 {
			fs.busySince = fs.eng.Now()
		}
		fs.activeTransfers++
		// The fixed per-file cost is expressed as byte-equivalents at
		// peak rate, so it flows through the processor-sharing
		// arithmetic (allocation under load is slower too).
		overhead := fileOverhead * fs.params.OSTBandwidth
		t := &transfer{
			ost:       o,
			remaining: bytes*jitter + overhead,
			payload:   bytes,
			pat:       pat,
			read:      read,
			future:    f,
		}
		o.advance()
		o.active = append(o.active, t)
		o.recompute()
	}
	if straggle > 0 {
		// A straggler episode (stuck RPC, server hiccup) costs wall-clock
		// time before the request is serviced, independent of the
		// request's size or the OST's current load.
		fs.eng.After(straggle, start)
	} else {
		start()
	}
	return f
}

// Write blocks the process until a whole-file write of the given size and
// pattern to ostID completes.
func (fs *FS) Write(p *des.Proc, ostID int, bytes float64, pat Pattern) {
	p.Await(fs.WriteAsync(ostID, bytes, pat))
}

// WriteChunk blocks the process until a chunk write (no per-file
// overhead) completes.
func (fs *FS) WriteChunk(p *des.Proc, ostID int, bytes float64, pat Pattern) {
	p.Await(fs.WriteChunkAsync(ostID, bytes, pat))
}

// WriteStriped writes bytes striped evenly over the given OSTs and blocks
// until every stripe chunk completes.
func (fs *FS) WriteStriped(p *des.Proc, osts []int, bytes float64, pat Pattern) {
	if len(osts) == 0 {
		panic("pfs: WriteStriped with no OSTs")
	}
	chunk := bytes / float64(len(osts))
	futures := make([]*des.Future, len(osts))
	for i, o := range osts {
		futures[i] = fs.WriteAsync(o, chunk, pat)
	}
	for _, f := range futures {
		p.Await(f)
	}
}

// IOBusyTime returns the union of time during which at least one transfer
// was in flight. BytesWritten / IOBusyTime is the achieved aggregate
// throughput in the sense of the paper's §IV.C.
func (fs *FS) IOBusyTime() float64 {
	t := fs.busyTotal
	if fs.activeTransfers > 0 {
		t += fs.eng.Now() - fs.busySince
	}
	return t
}

// AggregateThroughput returns completed bytes divided by the elapsed
// window, in bytes/s.
func (fs *FS) AggregateThroughput(window float64) float64 {
	if window <= 0 {
		return 0
	}
	return fs.totalBytes / window
}

// ost is one object storage target serving its active transfers under
// processor sharing: the OST's effective bandwidth (peak × pattern
// efficiency × congestion) is split equally among active streams.
type ost struct {
	fs         *FS
	id         int
	rng        *rng.Stream
	congestion float64

	// active holds in-flight transfers in arrival order; keeping a slice
	// (not a map) makes completion order — and thus the whole simulation —
	// deterministic.
	active     []*transfer
	lastUpdate float64
	rate       float64 // current per-transfer drain rate (bytes/s)
	timer      *des.Timer
}

type transfer struct {
	ost       *ost
	remaining float64 // jitter-inflated bytes left to serve
	payload   float64 // real bytes (accounted on completion)
	pat       Pattern
	read      bool // accounted to TotalBytesRead, not TotalBytes
	future    *des.Future
}

// drawJitter returns the multiplicative log-normal service jitter and an
// additive straggler delay in seconds (a stuck RPC or server hiccup costs
// wall time, not time proportional to the request size).
func (o *ost) drawJitter() (mult, straggleSeconds float64) {
	p := o.fs.params
	mult = 1.0
	if p.JitterSigma > 0 {
		mult = o.rng.UnitLogNormal(p.JitterSigma)
	}
	if p.HeavyTailProb > 0 && o.rng.Float64() < p.HeavyTailProb {
		straggleSeconds = o.rng.Pareto(p.HeavyTailScale, p.HeavyTailAlpha)
		// Interference episodes last seconds to a couple of minutes; cap
		// the Pareto tail so one draw cannot dominate a whole run.
		if straggleSeconds > 120 {
			straggleSeconds = 120
		}
	}
	return mult, straggleSeconds
}

// efficiency returns the fraction of OST peak delivered in aggregate when
// n streams of the given blended pattern mix are active.
func (o *ost) efficiency(n int) float64 {
	if n == 0 {
		return 1
	}
	p := o.fs.params
	// Blend the per-pattern degradation over the active mix.
	var base, alpha float64
	for _, t := range o.active {
		switch t.pat {
		case BigSequential:
			base += 1
			alpha += p.AlphaSeq
		case SmallFile:
			base += p.SmallBase
			alpha += p.AlphaSmall
		case SharedFile:
			base += p.SharedBase
			alpha += p.AlphaShared
		}
	}
	base /= float64(n)
	alpha /= float64(n)
	return base / (1 + alpha*float64(n-1))
}

// advance drains the active transfers for the time elapsed since the last
// update at the previously computed rate.
func (o *ost) advance() {
	now := o.fs.eng.Now()
	dt := now - o.lastUpdate
	o.lastUpdate = now
	if dt <= 0 || o.rate <= 0 || len(o.active) == 0 {
		return
	}
	drained := o.rate * dt
	for _, t := range o.active {
		t.remaining -= drained
		if t.remaining < 1 { // sub-byte residue: done
			t.remaining = 0
		}
	}
}

// recompute completes any finished transfers, recomputes the shared rate,
// and schedules the next completion.
func (o *ost) recompute() {
	if o.timer != nil {
		o.timer.Cancel()
		o.timer = nil
	}
	// Complete transfers drained to zero, preserving arrival order.
	live := o.active[:0]
	for _, t := range o.active {
		if t.remaining <= 0 {
			if t.read {
				o.fs.totalBytesRead += t.payload
			} else {
				o.fs.totalBytes += t.payload
			}
			o.fs.activeTransfers--
			if o.fs.activeTransfers == 0 {
				o.fs.busyTotal += o.fs.eng.Now() - o.fs.busySince
			}
			t.future.Complete()
		} else {
			live = append(live, t)
		}
	}
	o.active = live
	n := len(o.active)
	if n == 0 {
		o.rate = 0
		return
	}
	p := o.fs.params
	aggregate := p.OSTBandwidth * o.fs.bwFactor * o.efficiency(n) * o.congestion
	if aggregate < 1 { // floor to avoid virtually-stalled transfers
		aggregate = 1
	}
	o.rate = aggregate / float64(n)
	// Next completion: the smallest remaining backlog.
	min := math.Inf(1)
	for _, t := range o.active {
		if t.remaining < min {
			min = t.remaining
		}
	}
	o.timer = o.fs.eng.After(min/o.rate, func() {
		o.advance()
		o.recompute()
	})
}
