package pfs

import (
	"testing"

	"repro/internal/des"
	"repro/internal/rng"
	"repro/internal/topology"
)

// quietParams returns a deterministic PFS (no jitter, no congestion) for
// exact-arithmetic tests.
func quietParams() topology.PFSParams {
	p := topology.Kraken(1).PFS
	p.JitterSigma = 0
	p.HeavyTailProb = 0
	p.CongestionSigma = 0
	p.FileOverhead = 0
	return p
}

func TestSingleStreamAtPeak(t *testing.T) {
	eng := des.NewEngine()
	params := quietParams()
	params.OSTBandwidth = 100e6
	fs := New(eng, params, rng.New(1, 1))
	var done float64
	eng.Spawn("w", func(p *des.Proc) {
		fs.Write(p, 0, 200e6, BigSequential)
		done = p.Now()
	})
	eng.Run()
	if want := 2.0; done < want*0.999 || done > want*1.001 {
		t.Fatalf("single-stream write of 200MB at 100MB/s finished at %v s, want ≈ %v", done, want)
	}
	if fs.TotalBytes() != 200e6 {
		t.Fatalf("TotalBytes = %v", fs.TotalBytes())
	}
}

func TestProcessorSharingSlowdown(t *testing.T) {
	// Two concurrent big-sequential streams on one OST must each take
	// longer than alone, and aggregate efficiency must match the model:
	// eff(2) = 1/(1+alpha).
	eng := des.NewEngine()
	params := quietParams()
	params.OSTBandwidth = 100e6
	params.AlphaSeq = 0.5
	fs := New(eng, params, rng.New(1, 1))
	var t1, t2 float64
	eng.Spawn("a", func(p *des.Proc) { fs.Write(p, 0, 100e6, BigSequential); t1 = p.Now() })
	eng.Spawn("b", func(p *des.Proc) { fs.Write(p, 0, 100e6, BigSequential); t2 = p.Now() })
	eng.Run()
	// Aggregate rate = 100 MB/s × 1/(1.5) = 66.7 MB/s for 200 MB → 3 s.
	if t1 < 2.99 || t1 > 3.01 || t2 < 2.99 || t2 > 3.01 {
		t.Fatalf("PS completion times = %v, %v, want ≈ 3 s", t1, t2)
	}
}

func TestLateArrivalSharesRemainder(t *testing.T) {
	// Stream B arrives when A is half done; with alpha=0 they then share
	// the bandwidth equally.
	eng := des.NewEngine()
	params := quietParams()
	params.OSTBandwidth = 100e6
	params.AlphaSeq = 0
	fs := New(eng, params, rng.New(1, 1))
	var ta, tb float64
	eng.Spawn("a", func(p *des.Proc) { fs.Write(p, 0, 100e6, BigSequential); ta = p.Now() })
	eng.SpawnAt(0.5, "b", func(p *des.Proc) { fs.Write(p, 0, 100e6, BigSequential); tb = p.Now() })
	eng.Run()
	// A: 50 MB alone (0.5 s) + 50 MB at 50 MB/s (1 s) → 1.5 s.
	// B: 50 MB at 50 MB/s (until A leaves at 1.5) + 50 MB at 100 MB/s → 2.0 s.
	if ta < 1.49 || ta > 1.51 {
		t.Fatalf("A finished at %v, want 1.5", ta)
	}
	if tb < 1.99 || tb > 2.01 {
		t.Fatalf("B finished at %v, want 2.0", tb)
	}
}

func TestPatternOrdering(t *testing.T) {
	// With equal concurrency, shared-file streams must be served far more
	// slowly than small-file streams, which are slower than big-sequential
	// ones — the mechanism behind collective < FPP < Damaris.
	finish := func(pat Pattern) float64 {
		eng := des.NewEngine()
		fs := New(eng, quietParams(), rng.New(1, 1))
		var last float64
		for i := 0; i < 8; i++ {
			eng.Spawn("w", func(p *des.Proc) {
				fs.Write(p, 0, 10e6, pat)
				if p.Now() > last {
					last = p.Now()
				}
			})
		}
		eng.Run()
		return last
	}
	big, small, shared := finish(BigSequential), finish(SmallFile), finish(SharedFile)
	if !(big < small && small < shared) {
		t.Fatalf("pattern makespans: big=%v small=%v shared=%v, want big < small < shared",
			big, small, shared)
	}
	if shared < 5*big {
		t.Fatalf("shared-file collapse too mild: shared=%v vs big=%v", shared, big)
	}
}

func TestFileOverheadChargedPerFile(t *testing.T) {
	// Writing the same volume as many files must cost the per-file
	// overhead each time: the mechanism that rewards aggregation.
	makespan := func(files int, total float64) float64 {
		eng := des.NewEngine()
		params := quietParams()
		params.OSTBandwidth = 100e6
		params.FileOverhead = 0.5
		fs := New(eng, params, rng.New(1, 1))
		eng.Spawn("w", func(p *des.Proc) {
			for i := 0; i < files; i++ {
				fs.Write(p, 0, total/float64(files), BigSequential)
			}
		})
		return eng.Run()
	}
	one := makespan(1, 100e6)
	ten := makespan(10, 100e6)
	// 1 file: 1 s + 0.5 s = 1.5 s; 10 files: 1 s + 5 s = 6 s.
	if one < 1.49 || one > 1.51 {
		t.Fatalf("single file took %v, want 1.5", one)
	}
	if ten < 5.99 || ten > 6.01 {
		t.Fatalf("ten files took %v, want 6", ten)
	}
}

func TestMDSSerializes(t *testing.T) {
	eng := des.NewEngine()
	params := quietParams()
	params.MDSCreate = 0.01
	fs := New(eng, params, rng.New(1, 1))
	var last float64
	const n = 100
	for i := 0; i < n; i++ {
		eng.Spawn("c", func(p *des.Proc) {
			fs.Create(p)
			if p.Now() > last {
				last = p.Now()
			}
		})
	}
	eng.Run()
	want := float64(n) * 0.01
	if last < want*0.999 || last > want*1.001 {
		t.Fatalf("100 creates at 10ms serialized finished at %v, want %v", last, want)
	}
	if fs.MDSOps() != n {
		t.Fatalf("MDSOps = %d", fs.MDSOps())
	}
}

func TestPlaceFile(t *testing.T) {
	eng := des.NewEngine()
	fs := New(eng, quietParams(), rng.New(1, 1))
	r := rng.New(7, 7)
	osts := fs.PlaceFile(4, r)
	if len(osts) != 4 {
		t.Fatalf("PlaceFile returned %d OSTs", len(osts))
	}
	seen := map[int]bool{}
	for _, o := range osts {
		if o < 0 || o >= fs.OSTCount() || seen[o] {
			t.Fatalf("invalid or duplicate OST %d in %v", o, osts)
		}
		seen[o] = true
	}
	// Requesting more stripes than OSTs yields all OSTs.
	all := fs.PlaceFile(10000, r)
	if len(all) != fs.OSTCount() {
		t.Fatalf("full-stripe placement returned %d", len(all))
	}
}

func TestWriteStriped(t *testing.T) {
	eng := des.NewEngine()
	params := quietParams()
	params.OSTBandwidth = 100e6
	fs := New(eng, params, rng.New(1, 1))
	var done float64
	eng.Spawn("w", func(p *des.Proc) {
		fs.WriteStriped(p, []int{0, 1, 2, 3}, 400e6, BigSequential)
		done = p.Now()
	})
	eng.Run()
	// 100 MB per OST in parallel at 100 MB/s → 1 s.
	if done < 0.99 || done > 1.01 {
		t.Fatalf("striped write finished at %v, want 1", done)
	}
}

func TestZeroByteWriteCompletesImmediately(t *testing.T) {
	eng := des.NewEngine()
	fs := New(eng, quietParams(), rng.New(1, 1))
	f := fs.WriteAsync(0, 0, BigSequential)
	if !f.Done() {
		t.Fatal("zero-byte write should complete immediately")
	}
}

func TestDeterminismAcrossRuns(t *testing.T) {
	run := func() []float64 {
		eng := des.NewEngine()
		p := topology.Kraken(1).PFS // with jitter enabled
		fs := New(eng, p, rng.New(42, 42))
		var times []float64
		fs.BeginPhase()
		for i := 0; i < 50; i++ {
			ostID := i % 7
			eng.Spawn("w", func(pr *des.Proc) {
				fs.Write(pr, ostID, 5e6, SmallFile)
				times = append(times, pr.Now())
			})
		}
		eng.Run()
		return times
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatal("different completion counts")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("run diverged at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestBeginPhaseCongestionOnlyHurts(t *testing.T) {
	eng := des.NewEngine()
	params := quietParams()
	params.CongestionSigma = 1.0
	params.OSTBandwidth = 100e6
	fs := New(eng, params, rng.New(3, 3))
	fs.BeginPhase()
	var done float64
	eng.Spawn("w", func(p *des.Proc) {
		fs.Write(p, 0, 100e6, BigSequential)
		done = p.Now()
	})
	eng.Run()
	if done < 0.999 {
		t.Fatalf("congested write finished in %v s, faster than nominal 1 s", done)
	}
}

func TestAggregateThroughput(t *testing.T) {
	eng := des.NewEngine()
	params := quietParams()
	params.OSTBandwidth = 100e6
	fs := New(eng, params, rng.New(1, 1))
	eng.Spawn("w", func(p *des.Proc) { fs.Write(p, 0, 100e6, BigSequential) })
	end := eng.Run()
	if tp := fs.AggregateThroughput(end); tp < 99e6 || tp > 101e6 {
		t.Fatalf("throughput = %v, want ≈ 100e6", tp)
	}
	if fs.AggregateThroughput(0) != 0 {
		t.Fatal("zero window should yield zero throughput")
	}
}
