package rng

import "hash/fnv"

// SimulationKey names one deterministic stream inside a partitioned
// simulation: a root Seed, the Subsystem drawing from the stream
// ("cadence", "size", "platform", …), and an optional Entity index
// within that subsystem (a node, a rank, a tenant).
//
// The stream a key selects is a pure function of the key — it does not
// depend on construction order, on how many values any other stream has
// produced, or on which goroutine asks. That is the determinism
// contract the workload generator builds on: because every subsystem
// draws only from its own stream, interleaving subsystems in any order
// replays a scenario bit-identically from the seed.
type SimulationKey struct {
	// Seed is the run's root seed.
	Seed uint64
	// Subsystem names the consumer of the stream.
	Subsystem string
	// Entity distinguishes instances within a subsystem (0 for the
	// subsystem's own stream).
	Entity uint64
}

// Stream returns the stream the key selects. Equal keys always return
// streams producing identical sequences; keys differing in any field
// select statistically independent sequences.
func (k SimulationKey) Stream() *Stream {
	h := fnv.New64a()
	h.Write([]byte(k.Subsystem))
	sub := h.Sum64()
	seed := k.Seed ^ (sub*0x9e3779b97f4a7c15 + 0x2545f4914f6cdd1d)
	seed ^= k.Entity*0xd1b54a32d192ed03 + 0x8cb92ba72f3d8dd7
	return New(seed, sub^k.Entity)
}

// Partition fans one root seed out into per-subsystem streams. It is
// the SimulationKey convenience layer: a Partition is just the seed,
// and every accessor is a pure function, so a Partition may be shared
// (and copied) freely — only the Streams it hands out carry state.
type Partition struct {
	seed uint64
}

// NewPartition returns a partition rooted at seed.
func NewPartition(seed uint64) Partition { return Partition{seed: seed} }

// Seed reports the root seed the partition was built from.
func (p Partition) Seed() uint64 { return p.seed }

// Subsystem returns the named subsystem's own stream — the Entity-0
// stream of SimulationKey{Seed, name, 0}.
func (p Partition) Subsystem(name string) *Stream {
	return SimulationKey{Seed: p.seed, Subsystem: name}.Stream()
}

// Entity returns the stream for one entity (node, rank, tenant …)
// within a subsystem.
func (p Partition) Entity(subsystem string, id uint64) *Stream {
	return SimulationKey{Seed: p.seed, Subsystem: subsystem, Entity: id}.Stream()
}
