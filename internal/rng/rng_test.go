package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42, 7)
	b := New(42, 7)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams with identical identity diverged at draw %d", i)
		}
	}
}

func TestStreamIndependence(t *testing.T) {
	a := New(42, 1)
	b := New(42, 2)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 1 {
		t.Fatalf("distinct streams produced %d identical 64-bit draws out of 1000", same)
	}
}

func TestNamedStableUnderDraws(t *testing.T) {
	a := New(1, 1)
	c1 := a.Named("jitter")
	a.Uint64() // advance the parent
	c2 := New(1, 1).Named("jitter")
	for i := 0; i < 100; i++ {
		if c1.Uint64() != c2.Uint64() {
			t.Fatal("Named stream depends on the parent's draw position")
		}
	}
}

func TestChildDistinct(t *testing.T) {
	root := New(9, 0)
	a := root.Child(1)
	b := root.Child(2)
	if a.Uint64() == b.Uint64() && a.Uint64() == b.Uint64() {
		t.Fatal("children with distinct ids produced identical sequences")
	}
}

func TestFloat64Range(t *testing.T) {
	s := New(3, 3)
	for i := 0; i < 100000; i++ {
		v := s.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %v", v)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	s := New(4, 4)
	sum := 0.0
	const n = 200000
	for i := 0; i < n; i++ {
		sum += s.Float64()
	}
	if m := sum / n; math.Abs(m-0.5) > 0.01 {
		t.Fatalf("uniform mean = %v, want ≈ 0.5", m)
	}
}

func TestIntnBounds(t *testing.T) {
	s := New(5, 5)
	seen := make(map[int]bool)
	for i := 0; i < 10000; i++ {
		v := s.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn(7) = %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 7 {
		t.Fatalf("Intn(7) covered %d values, want 7", len(seen))
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1, 1).Intn(0)
}

func TestPermIsPermutation(t *testing.T) {
	s := New(6, 6)
	if err := quick.Check(func(nRaw uint8) bool {
		n := int(nRaw%64) + 1
		p := s.Perm(n)
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestExponentialMean(t *testing.T) {
	s := New(7, 7)
	sum := 0.0
	const n = 200000
	for i := 0; i < n; i++ {
		sum += s.Exponential(3.5)
	}
	if m := sum / n; math.Abs(m-3.5) > 0.05 {
		t.Fatalf("exponential mean = %v, want ≈ 3.5", m)
	}
}

func TestNormalMoments(t *testing.T) {
	s := New(8, 8)
	const n = 200000
	sum, sumSq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := s.Normal(2, 3)
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean-2) > 0.05 {
		t.Fatalf("normal mean = %v, want ≈ 2", mean)
	}
	if math.Abs(variance-9) > 0.3 {
		t.Fatalf("normal variance = %v, want ≈ 9", variance)
	}
}

func TestUnitLogNormalMeanIsOne(t *testing.T) {
	s := New(9, 9)
	const n = 400000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += s.UnitLogNormal(0.5)
	}
	if m := sum / n; math.Abs(m-1) > 0.02 {
		t.Fatalf("unit log-normal mean = %v, want ≈ 1", m)
	}
}

func TestParetoBound(t *testing.T) {
	s := New(10, 10)
	for i := 0; i < 100000; i++ {
		if v := s.Pareto(2, 1.5); v < 2 {
			t.Fatalf("Pareto(2, 1.5) = %v below scale", v)
		}
	}
}

func TestParetoHeavyTail(t *testing.T) {
	s := New(11, 11)
	big := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if s.Pareto(1, 1.1) > 20 {
			big++
		}
	}
	// P(X > 20) = 20^-1.1 ≈ 0.037; allow a generous band.
	if big < n/100 || big > n/10 {
		t.Fatalf("tail mass P(X>20) ≈ %v, want ≈ 0.037", float64(big)/n)
	}
}

func BenchmarkUint64(b *testing.B) {
	s := New(1, 1)
	for i := 0; i < b.N; i++ {
		s.Uint64()
	}
}
