// Package rng provides deterministic pseudo-random number streams and the
// distributions used by the platform models (I/O jitter, interference,
// compute noise).
//
// Every stochastic input of an experiment flows from a named Stream derived
// from the experiment's root seed, so that tables produced by the harness
// are reproducible bit-for-bit regardless of goroutine scheduling.
//
// The generator is PCG-XSH-RR 64/32 (O'Neill, 2014), implemented from
// scratch: it is tiny, fast, and each (seed, stream) pair selects an
// independent sequence.
package rng

import (
	"hash/fnv"
	"math"
)

// Stream is a deterministic random number stream. It is not safe for
// concurrent use; derive one stream per logical entity instead of sharing.
type Stream struct {
	state uint64
	inc   uint64
	seed  uint64 // construction seed, retained for Named/Child derivation
	// spare holds a cached second output of the polar normal transform.
	spare    float64
	hasSpare bool
}

// New returns a stream for the given seed and stream identifier.
// Distinct stream identifiers select statistically independent sequences
// for the same seed.
func New(seed, stream uint64) *Stream {
	s := &Stream{inc: stream<<1 | 1, seed: seed}
	s.state = 0
	s.Uint32()
	s.state += seed
	s.Uint32()
	return s
}

// Named derives a child stream from s identified by name. The derivation
// depends only on the parent's initial identity and the name, not on how
// many values the parent has produced, so call it before drawing from s
// whenever layout stability matters.
func (s *Stream) Named(name string) *Stream {
	h := fnv.New64a()
	h.Write([]byte(name))
	return New(h.Sum64()^(s.seed*0x9e3779b97f4a7c15+0x2545f4914f6cdd1d), s.inc>>1)
}

// Child derives a child stream from s using a numeric identifier, e.g. a
// node or rank index.
func (s *Stream) Child(id uint64) *Stream {
	return New(s.seed^(id*0x9e3779b97f4a7c15+0xd1b54a32d192ed03), id)
}

// Uint32 returns the next 32 uniformly distributed bits.
func (s *Stream) Uint32() uint32 {
	old := s.state
	s.state = old*6364136223846793005 + s.inc
	xorshifted := uint32(((old >> 18) ^ old) >> 27)
	rot := uint32(old >> 59)
	return xorshifted>>rot | xorshifted<<((-rot)&31)
}

// Uint64 returns the next 64 uniformly distributed bits.
func (s *Stream) Uint64() uint64 {
	hi := uint64(s.Uint32())
	lo := uint64(s.Uint32())
	return hi<<32 | lo
}

// Float64 returns a uniform value in [0, 1).
func (s *Stream) Float64() float64 {
	return float64(s.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (s *Stream) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn called with non-positive n")
	}
	// Lemire's nearly-divisionless bounded generation on 32 bits is
	// unnecessary here; simple rejection keeps the stream portable.
	max := uint64(n)
	limit := math.MaxUint64 - math.MaxUint64%max
	for {
		v := s.Uint64()
		if v < limit {
			return int(v % max)
		}
	}
}

// Perm returns a random permutation of [0, n).
func (s *Stream) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := s.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Exponential returns a draw from the exponential distribution with the
// given mean.
func (s *Stream) Exponential(mean float64) float64 {
	u := s.Float64()
	for u == 0 {
		u = s.Float64()
	}
	return -mean * math.Log(u)
}

// Normal returns a draw from the normal distribution N(mu, sigma²) using
// the Marsaglia polar method.
func (s *Stream) Normal(mu, sigma float64) float64 {
	if s.hasSpare {
		s.hasSpare = false
		return mu + sigma*s.spare
	}
	for {
		u := 2*s.Float64() - 1
		v := 2*s.Float64() - 1
		q := u*u + v*v
		if q == 0 || q >= 1 {
			continue
		}
		f := math.Sqrt(-2 * math.Log(q) / q)
		s.spare = v * f
		s.hasSpare = true
		return mu + sigma*u*f
	}
}

// LogNormal returns a draw from the log-normal distribution whose
// underlying normal has parameters (mu, sigma).
func (s *Stream) LogNormal(mu, sigma float64) float64 {
	return math.Exp(s.Normal(mu, sigma))
}

// UnitLogNormal returns a multiplicative jitter factor with mean 1 and the
// given shape sigma: LogNormal(-sigma²/2, sigma). Larger sigma gives a
// heavier right tail while keeping E[X] = 1.
func (s *Stream) UnitLogNormal(sigma float64) float64 {
	return s.LogNormal(-sigma*sigma/2, sigma)
}

// Pareto returns a draw from the Pareto distribution with scale xm > 0 and
// shape alpha > 0. Small alpha (≈1) produces very heavy tails.
func (s *Stream) Pareto(xm, alpha float64) float64 {
	u := s.Float64()
	for u == 0 {
		u = s.Float64()
	}
	return xm / math.Pow(u, 1/alpha)
}
