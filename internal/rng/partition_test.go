package rng

import "testing"

func TestPartitionPureFunctionOfKey(t *testing.T) {
	p := NewPartition(2013)
	a := p.Subsystem("cadence")
	// Drawing from one subsystem's stream must not perturb another.
	for i := 0; i < 100; i++ {
		a.Uint64()
	}
	b1 := p.Subsystem("size")
	b2 := NewPartition(2013).Subsystem("size")
	for i := 0; i < 100; i++ {
		if b1.Uint64() != b2.Uint64() {
			t.Fatalf("subsystem stream depends on sibling draw history (draw %d)", i)
		}
	}
}

func TestPartitionConstructionOrderIrrelevant(t *testing.T) {
	names := []string{"cadence", "size", "mix", "platform", "ladder"}
	forward := map[string]uint64{}
	p := NewPartition(99)
	for _, n := range names {
		forward[n] = p.Subsystem(n).Uint64()
	}
	q := NewPartition(99)
	for i := len(names) - 1; i >= 0; i-- {
		n := names[i]
		if got := q.Subsystem(n).Uint64(); got != forward[n] {
			t.Fatalf("subsystem %q stream changed with construction order", n)
		}
	}
}

func TestPartitionKeysIndependent(t *testing.T) {
	p := NewPartition(7)
	pairs := []*Stream{
		p.Subsystem("a"),
		p.Subsystem("b"),
		p.Entity("a", 1),
		p.Entity("a", 2),
		NewPartition(8).Subsystem("a"),
	}
	for i := 0; i < len(pairs); i++ {
		for j := i + 1; j < len(pairs); j++ {
			a, b := pairs[i], pairs[j]
			same := 0
			for k := 0; k < 200; k++ {
				if a.Uint64() == b.Uint64() {
					same++
				}
			}
			if same > 1 {
				t.Fatalf("streams %d and %d produced %d identical draws of 200", i, j, same)
			}
		}
	}
}

func TestSimulationKeyMatchesPartition(t *testing.T) {
	k := SimulationKey{Seed: 5, Subsystem: "size", Entity: 3}
	a := k.Stream()
	b := NewPartition(5).Entity("size", 3)
	for i := 0; i < 50; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("Partition.Entity disagrees with the explicit SimulationKey")
		}
	}
}
