// Package visitsim emulates the VisIt "libsim" in-situ coupling
// interface the paper compares against (§V.C): the simulation registers
// metadata and data-access callbacks, and periodically calls
// UpdatePlots, which *synchronously* pulls data through the callbacks,
// runs the visualization pipeline and renders — stalling the simulation
// for the duration, exactly the coupling cost Damaris avoids.
//
// The API shape deliberately follows libsim's hand-rolled, handle-and-
// callback style (VisItSetGetMetaData, VisItSetGetVariable,
// VisItTimeStepChanged, VisItUpdatePlots, VisItSaveWindow), which is
// what makes instrumenting a simulation with it cost the >100 lines the
// paper measures (§V.C.2).
package visitsim

import (
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/insitu"
)

// MeshMetaData declares a mesh to the visualization tool.
type MeshMetaData struct {
	Name            string
	MeshType        string
	TopologicalDim  int
	SpatialDim      int
	NumberOfDomains int
}

// VariableMetaData declares a plottable variable.
type VariableMetaData struct {
	Name       string
	MeshName   string
	Centering  string
	Units      string
	Components int
}

// MetaData accumulates the declarations made by the GetMetaData
// callback.
type MetaData struct {
	meshes []MeshMetaData
	vars   []VariableMetaData
}

// AddMesh registers a mesh declaration.
func (md *MetaData) AddMesh(m MeshMetaData) { md.meshes = append(md.meshes, m) }

// AddVariable registers a variable declaration.
func (md *MetaData) AddVariable(v VariableMetaData) { md.vars = append(md.vars, v) }

// MeshData is the payload a GetMesh callback hands back: rectilinear
// coordinate arrays, as VisIt_RectilinearMesh wants them.
type MeshData struct {
	XCoords, YCoords, ZCoords []float64
}

// SetCoords stores the rectilinear coordinate arrays.
func (md *MeshData) SetCoords(x, y, z []float64) error {
	if len(x) == 0 || len(y) == 0 || len(z) == 0 {
		return fmt.Errorf("visitsim: empty coordinate array")
	}
	md.XCoords, md.YCoords, md.ZCoords = x, y, z
	return nil
}

// VariableData is the payload a GetVariable callback hands back.
type VariableData struct {
	dims [3]int
	data []float64
}

// SetData stores the variable's values (z-slowest layout).
func (vd *VariableData) SetData(nz, ny, nx int, values []float64) error {
	if nz*ny*nx != len(values) {
		return fmt.Errorf("visitsim: %d values for %dx%dx%d", len(values), nz, ny, nx)
	}
	vd.dims = [3]int{nz, ny, nx}
	vd.data = values
	return nil
}

// Simulation is one coupled simulation instance.
type Simulation struct {
	name        string
	getMetaData func(*MetaData)
	getVariable func(name string) (*VariableData, error)
	getMesh     func(name string) (*MeshData, error)
	getDomains  func() []int
	commands    map[string]func()
	pipeline    insitu.Pipeline
	cycle       int
	mode        string // "running" or "stopped"

	lastResults []insitu.Result
	updates     int
}

// Setup initializes the coupling (VisItSetupEnvironment +
// VisItInitializeSocketAndDumpSimFile in the original).
func Setup(name string) *Simulation {
	return &Simulation{
		name:     name,
		pipeline: insitu.DefaultPipeline(),
		commands: map[string]func(){},
		mode:     "running",
	}
}

// SetGetMetaData registers the metadata callback.
func (s *Simulation) SetGetMetaData(fn func(*MetaData)) { s.getMetaData = fn }

// SetGetVariable registers the data-access callback.
func (s *Simulation) SetGetVariable(fn func(name string) (*VariableData, error)) {
	s.getVariable = fn
}

// SetGetMesh registers the mesh-access callback (VisItSetGetMesh).
func (s *Simulation) SetGetMesh(fn func(name string) (*MeshData, error)) {
	s.getMesh = fn
}

// SetGetDomainList registers the domain-list callback
// (VisItSetGetDomainList).
func (s *Simulation) SetGetDomainList(fn func() []int) { s.getDomains = fn }

// AddCommand registers a console/engine command and its handler
// (VisItSetCommandCallback + metadata command registration in libsim).
func (s *Simulation) AddCommand(name string, fn func()) { s.commands[name] = fn }

// ProcessEngineCommand dispatches a control command, as a libsim main
// loop does on VisItDetectInput; unknown commands report false.
func (s *Simulation) ProcessEngineCommand(name string) bool {
	fn, ok := s.commands[name]
	if !ok {
		return false
	}
	fn()
	return true
}

// SetMode switches the simulation control mode ("running"/"stopped").
func (s *Simulation) SetMode(mode string) { s.mode = mode }

// Mode returns the current control mode.
func (s *Simulation) Mode() string { return s.mode }

// TimeStepChanged tells the tool the simulation advanced.
func (s *Simulation) TimeStepChanged(cycle int) { s.cycle = cycle }

// UpdatePlots synchronously re-executes the visualization pipeline: it
// pulls the metadata, fetches every declared variable through the
// callback, and runs analysis + rendering before returning. The caller
// (the simulation) is stalled the whole time.
func (s *Simulation) UpdatePlots() error {
	if s.getMetaData == nil || s.getVariable == nil {
		return fmt.Errorf("visitsim: callbacks not registered")
	}
	var md MetaData
	s.getMetaData(&md)
	// Validate meshes through the mesh callback, as the tool would when
	// building its plots.
	if s.getMesh != nil {
		for _, m := range md.meshes {
			if _, err := s.getMesh(m.Name); err != nil {
				return fmt.Errorf("visitsim: mesh %q: %w", m.Name, err)
			}
		}
	}
	s.lastResults = s.lastResults[:0]
	for _, v := range md.vars {
		vd, err := s.getVariable(v.Name)
		if err != nil {
			return fmt.Errorf("visitsim: variable %q: %w", v.Name, err)
		}
		field := insitu.Field{
			Name: v.Name,
			NZ:   vd.dims[0], NY: vd.dims[1], NX: vd.dims[2],
			Data: vd.data,
		}
		res, err := s.pipeline.Analyze(field, s.cycle)
		if err != nil {
			return err
		}
		s.lastResults = append(s.lastResults, res)
	}
	s.updates++
	return nil
}

// SaveWindow renders the most recent results to image files with the
// given prefix and returns the paths written.
func (s *Simulation) SaveWindow(dir, prefix string) ([]string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	var paths []string
	for _, res := range s.lastResults {
		p := filepath.Join(dir, fmt.Sprintf("%s-%s-cycle%06d.pgm", prefix, res.Field, res.Iteration))
		if err := os.WriteFile(p, res.Image.EncodePGM(), 0o644); err != nil {
			return nil, err
		}
		paths = append(paths, p)
	}
	return paths, nil
}

// Results returns the last UpdatePlots output (tests, comparisons).
func (s *Simulation) Results() []insitu.Result {
	return append([]insitu.Result(nil), s.lastResults...)
}

// Updates returns how many synchronous pipeline executions ran.
func (s *Simulation) Updates() int { return s.updates }
