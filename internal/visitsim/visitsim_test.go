package visitsim

import (
	"path/filepath"
	"testing"
)

func setupCoupled(t *testing.T) *Simulation {
	t.Helper()
	sim := Setup("cavity")
	sim.SetGetMetaData(func(md *MetaData) {
		md.AddMesh(MeshMetaData{Name: "grid", MeshType: "rectilinear", TopologicalDim: 3, SpatialDim: 3, NumberOfDomains: 1})
		md.AddVariable(VariableMetaData{Name: "u", MeshName: "grid", Centering: "nodal", Components: 1})
	})
	sim.SetGetVariable(func(name string) (*VariableData, error) {
		vd := &VariableData{}
		vals := make([]float64, 4*4*4)
		for i := range vals {
			vals[i] = float64(i)
		}
		return vd, vd.SetData(4, 4, 4, vals)
	})
	return sim
}

func TestUpdatePlotsSynchronous(t *testing.T) {
	sim := setupCoupled(t)
	sim.TimeStepChanged(3)
	if err := sim.UpdatePlots(); err != nil {
		t.Fatal(err)
	}
	res := sim.Results()
	if len(res) != 1 || res[0].Field != "u" || res[0].Iteration != 3 {
		t.Fatalf("results = %+v", res)
	}
	if sim.Updates() != 1 {
		t.Fatalf("updates = %d", sim.Updates())
	}
}

func TestUpdatePlotsRequiresCallbacks(t *testing.T) {
	sim := Setup("bare")
	if err := sim.UpdatePlots(); err == nil {
		t.Fatal("missing callbacks accepted")
	}
}

func TestSaveWindow(t *testing.T) {
	sim := setupCoupled(t)
	sim.TimeStepChanged(1)
	if err := sim.UpdatePlots(); err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	paths, err := sim.SaveWindow(dir, "test")
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 1 {
		t.Fatalf("saved %d images", len(paths))
	}
	if match, _ := filepath.Match(filepath.Join(dir, "test-u-cycle*.pgm"), paths[0]); !match {
		t.Fatalf("unexpected image path %q", paths[0])
	}
}

func TestSetDataValidation(t *testing.T) {
	vd := &VariableData{}
	if err := vd.SetData(2, 2, 2, make([]float64, 7)); err == nil {
		t.Fatal("size mismatch accepted")
	}
}
