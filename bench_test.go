package damaris

// One benchmark per table/figure of the paper's evaluation (see
// docs/EXPERIMENTS.md). Each runs the corresponding experiment harness at
// paper scale — the Kraken sweep up to 9216 cores replayed on the
// deterministic discrete-event substrate — and reports the headline
// measurement as a custom benchmark metric, so
//
//	go test -bench=. -benchmem
//
// regenerates the paper's numbers alongside the timing. The full tables
// and shape checks come from cmd/damaris-bench.

import (
	"sync/atomic"
	"testing"

	"repro/internal/cluster"
	"repro/internal/experiments"
	"repro/internal/iostrat"
	"repro/internal/storage"
	"repro/internal/topology"
)

// brokerBenchSeq hands each BenchmarkBrokerSharded goroutine its own
// target.
var brokerBenchSeq atomic.Int64

// countingStore is a sink for aggregation benchmarks: it accounts
// object sizes and drops the bytes, so the measured cost is the
// aggregation layer itself, not a particular backend's copy or map.
// Implementing storage.VecStore makes the root write fully zero-copy —
// the size comes from the segment lengths alone.
type countingStore struct{ bytes atomic.Int64 }

func (s *countingStore) Put(name string, data []byte) error {
	s.bytes.Add(int64(len(data)))
	return nil
}

func (s *countingStore) PutVec(name string, segs [][]byte) error {
	s.bytes.Add(int64(storage.SegsLen(segs)))
	return nil
}

// benchOptions keeps every benchmark iteration at paper scale but with
// few output phases so -bench runs stay in seconds.
func benchOptions() experiments.Options {
	o := experiments.Default()
	o.Iterations = 2
	return o
}

// reportChecks republishes each check's measured value as a benchmark
// metric (unit suffixed with the check index for uniqueness) and fails
// the benchmark if a shape check missed its band.
func reportChecks(b *testing.B, rep experiments.Report) {
	b.Helper()
	for _, c := range rep.Checks {
		if !c.Pass() {
			b.Errorf("paper-shape check missed: %s", c)
		}
	}
}

// BenchmarkE1Scalability regenerates §IV.A's weak-scaling comparison:
// run time of CM1 under file-per-process, collective I/O and Damaris
// from 576 to 9216 cores (paper: 3.5× speedup over collective, I/O at
// 70% of run time, near-perfect Damaris scalability).
func BenchmarkE1Scalability(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunE1(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		top := res.Results[9216]
		speedup := top[iostrat.Collective].TotalTime / top[iostrat.Damaris].TotalTime
		b.ReportMetric(speedup, "speedup_vs_collective")
		b.ReportMetric(top[iostrat.Collective].IOFraction(), "collective_io_frac")
		if i == b.N-1 {
			reportChecks(b, res.Report)
		}
	}
}

// BenchmarkE2Variability regenerates §IV.B's variability comparison
// (paper: orders of magnitude between slowest and fastest writers for
// synchronous approaches; ~0.1 s scale-independent writes with Damaris).
func BenchmarkE2Variability(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep, err := experiments.RunE2(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			reportChecks(b, rep)
		}
	}
}

// BenchmarkE3Throughput regenerates §IV.C's aggregate throughput table
// (paper on Kraken: collective 0.5 GB/s, FPP < 1.7 GB/s, Damaris up to
// 10 GB/s).
func BenchmarkE3Throughput(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep, err := experiments.RunE3(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		for _, c := range rep.Checks {
			if c.Name == "Damaris throughput" {
				b.ReportMetric(c.Measured, "damaris_GB_per_s")
			}
		}
		if i == b.N-1 {
			reportChecks(b, rep)
		}
	}
}

// BenchmarkE4IdleTime regenerates §IV.D's dedicated-core idle
// measurement (paper: 92–99% idle).
func BenchmarkE4IdleTime(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep, err := experiments.RunE4(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		for _, c := range rep.Checks {
			if c.Name == "minimum idle fraction across scales" {
				b.ReportMetric(c.Measured, "min_idle_frac")
			}
		}
		if i == b.N-1 {
			reportChecks(b, rep)
		}
	}
}

// BenchmarkE5Compression regenerates §IV.D's compression result (paper:
// 600% ratio with no overhead on the simulation).
func BenchmarkE5Compression(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep, err := experiments.RunE5(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		for _, c := range rep.Checks {
			if c.Name == "best lossless ratio on CM1 fields" {
				b.ReportMetric(c.Measured, "compression_ratio")
			}
		}
		if i == b.N-1 {
			reportChecks(b, rep)
		}
	}
}

// BenchmarkE6Scheduling regenerates §IV.D's I/O-scheduling result
// (paper: 12.7 GB/s with coordinated dedicated-core writes).
func BenchmarkE6Scheduling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep, err := experiments.RunE6(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		for _, c := range rep.Checks {
			if c.Name == "best scheduled throughput" {
				b.ReportMetric(c.Measured, "scheduled_GB_per_s")
			}
		}
		if i == b.N-1 {
			reportChecks(b, rep)
		}
	}
}

// BenchmarkE7InSitu regenerates §V.C.1's in-situ coupling comparison on
// the Nek proxy (paper: no impact with Damaris, synchronous VisIt-style
// coupling does not scale, frames are skipped rather than blocking).
// Wall-clock ratios are machine-dependent, so only the deterministic
// checks gate the benchmark.
func BenchmarkE7InSitu(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep, err := experiments.RunE7(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		for _, c := range rep.Checks {
			if c.Name == "frames dropped with tight segment" && !c.Pass() {
				b.Errorf("skip policy check missed: %s", c)
			}
		}
	}
}

// BenchmarkE8Usability regenerates §V.C.2's integration-effort count
// (paper: >100 lines with the VisIt API, <10 with Damaris).
func BenchmarkE8Usability(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep, err := experiments.RunE8(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		for _, c := range rep.Checks {
			if c.Name == "effort ratio VisIt/Damaris" {
				b.ReportMetric(c.Measured, "loc_ratio")
			}
		}
		if i == b.N-1 {
			reportChecks(b, rep)
		}
	}
}

// BenchmarkA1SharedMemory regenerates the §III.A design-choice ablation:
// one copy through shared memory vs two through message passing.
func BenchmarkA1SharedMemory(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep, err := experiments.RunA1(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			reportChecks(b, rep)
		}
	}
}

// BenchmarkA2Aggregation regenerates the aggregation-granularity
// ablation behind §IV.B's "group the output into bigger files".
func BenchmarkA2Aggregation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep, err := experiments.RunA2(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			reportChecks(b, rep)
		}
	}
}

// BenchmarkClientWritePath measures the public API's hot path: one
// variable write through the shared-memory segment (the ≈0.1 s the
// simulation pays per §IV.B, here without the simulated platform costs).
func BenchmarkClientWritePath(b *testing.B) {
	xml := `<simulation name="bench">
	  <architecture><buffer size="67108864"/></architecture>
	  <data>
	    <layout name="l" type="float64" dimensions="65536"/>
	    <variable name="v" layout="l"/>
	  </data>
	</simulation>`
	node, err := NewNodeFromXML(xml, 1, Options{})
	if err != nil {
		b.Fatal(err)
	}
	defer node.Shutdown()
	client := node.Client(0)
	data := make([]byte, 65536*8)
	b.SetBytes(int64(len(data)))
	// The client can outrun the dedicated core; bound the outstanding
	// iterations well under the segment's capacity (64 MiB / 512 KiB =
	// 128 blocks) so the skip policy never fires mid-benchmark.
	const lag = 32
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := client.Write("v", i, data); err != nil {
			b.Fatal(err)
		}
		client.EndIteration(i)
		if i >= lag {
			node.WaitIteration(i - lag)
		}
	}
}

// BenchmarkClusterAggregation measures the multi-node layer's steady
// state: 16 nodes with two simulation cores each push iterations
// through the binary aggregation tree into a zero-copy accounting
// store. The cluster is built once outside the timer, so the per-op
// number is the cost of moving one iteration leaf→root→store (pooled
// snapshot buffers, scatter-gather framing, no backend copy) — not
// the cost of standing up 16 nodes.
func BenchmarkClusterAggregation(b *testing.B) {
	xml := `<simulation name="clusterbench">
	  <architecture><dedicated cores="1"/><buffer size="8388608"/></architecture>
	  <data>
	    <layout name="l" type="float64" dimensions="8192"/>
	    <variable name="v" layout="l"/>
	  </data>
	</simulation>`
	cfg, err := ParseConfigString(xml)
	if err != nil {
		b.Fatal(err)
	}
	const nodes, clients = 16, 2
	data := make([]byte, 8192*8)
	c, err := cluster.New(cluster.Config{
		Platform: topology.Platform{Name: "bench", Nodes: nodes, CoresPerNode: clients + 1},
		Meta:     cfg,
		Fanout:   2,
		Store:    &countingStore{},
		// Manifests are per-iteration metadata writes; the benchmark
		// isolates the data path.
		DisableManifests: true,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(data)) * nodes * clients)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for n := 0; n < nodes; n++ {
			for s := 0; s < clients; s++ {
				cl := c.Client(n, s)
				if err := cl.Write("v", i, data); err != nil {
					b.Fatal(err)
				}
				cl.EndIteration(i)
			}
		}
		c.WaitIteration(i)
	}
	b.StopTimer()
	if err := c.Shutdown(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkBrokerSharded measures the cluster-wide token broker under
// root-per-target contention, the pattern the runtime cluster
// generates: 8 writers each acquiring and releasing their own target.
// The sharded broker gives each a distinct lock to land on.
func BenchmarkBrokerSharded(b *testing.B) {
	const writers = 8
	broker := storage.NewShardedBroker(storage.BrokerOptions{
		Policy:  storage.PolicyPerTarget,
		Targets: writers,
	}, writers)
	b.RunParallel(func(pb *testing.PB) {
		// Each goroutine sticks to one target, as each tree root does.
		target := int(brokerBenchSeq.Add(1)) % writers
		for pb.Next() {
			g := broker.Acquire(storage.TokenRequest{Holder: target, Targets: []int{target}})
			g.Release()
		}
	})
}
