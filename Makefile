# Local and CI entry points — .github/workflows/ci.yml calls exactly
# these targets, so a green `make ci` means a green workflow run.

GO ?= go

.PHONY: build test vet fmt fmt-check bench ci

build:
	$(GO) build ./...

test:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

fmt:
	gofmt -w .

fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

bench:
	$(GO) test -bench=. -benchtime=1x -run='^$$' ./...

ci: build vet fmt-check test bench
