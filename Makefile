# Local and CI entry points — .github/workflows/ci.yml calls exactly
# these targets, so a green `make ci` means a green workflow run.

GO ?= go

.PHONY: build test vet fmt fmt-check bench failure-race failure-smoke ci

build:
	$(GO) build ./...

test:
	$(GO) test -race ./...

# Focused race-detector pass over the failure/re-routing paths (also
# covered by `test`, kept separate so CI reports them distinctly).
failure-race:
	$(GO) test -race -run 'Failure|Reroute|Partial|Tree' ./internal/cluster ./internal/iostrat

# F1 failure-injection experiment at smoke scale: small node count,
# fixed seed, both the DES and the runtime cluster sweeps.
failure-smoke:
	$(GO) run ./cmd/damaris-bench -quick -exp f1

vet:
	$(GO) vet ./...

fmt:
	gofmt -w .

fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

bench:
	$(GO) test -bench=. -benchtime=1x -run='^$$' ./...

ci: build vet fmt-check test failure-race bench failure-smoke
