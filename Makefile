# Local and CI entry points — .github/workflows/ci.yml calls exactly
# these targets, so a green `make ci` means a green workflow run
# (except `lint`, which fetches its pinned tools from the network and
# therefore runs in CI and on demand, not inside `make ci`).

GO ?= go

# Pinned static-analysis tool versions (the lint job must not float).
STATICCHECK_VERSION ?= 2025.1.1
GOVULNCHECK_VERSION ?= v1.1.4

.PHONY: build test vet fmt fmt-check bench failure-race failure-smoke restart-smoke c1-smoke fuzz-smoke lint docs-check ci

build:
	$(GO) build ./...

test:
	$(GO) test -race ./...

# Focused race-detector pass over the failure/re-routing paths (also
# covered by `test`, kept separate so CI reports them distinctly).
failure-race:
	$(GO) test -race -run 'Failure|Reroute|Partial|Tree' ./internal/cluster ./internal/iostrat

# F1 failure-injection experiment at smoke scale: small node count,
# fixed seed, both the DES and the runtime cluster sweeps.
failure-smoke:
	$(GO) run ./cmd/damaris-bench -quick -exp f1

# R1 checkpoint/restart experiment at smoke scale: write objects +
# manifests into an sdf store, restore them, then replay the artifacts
# through -restart-from (the full object read path end to end).
restart-smoke:
	$(GO) run ./cmd/damaris-bench -quick -exp r1 -backend sdf -backend-dir out/restart-smoke
	$(GO) run ./cmd/damaris-bench -restart-from out/restart-smoke/fail0

# C1 compression smoke: the codec × dataset sweep with the adaptive
# selector at quick scale, then a compressed-store restart round trip
# on disk — write framed objects through the adaptive pipeline, replay
# them via -restart-from, and list them with sdfdump (codec + ratio).
c1-smoke:
	$(GO) run ./cmd/damaris-bench -quick -exp c1
	$(GO) run ./cmd/damaris-bench -quick -exp r1 -backend sdf -codec adaptive -backend-dir out/c1-smoke
	$(GO) run ./cmd/damaris-bench -restart-from out/c1-smoke/fail0
	$(GO) run ./cmd/sdfdump out/c1-smoke/fail0

# Short fuzz passes over the object decoders; `go test -fuzz` takes
# one package per invocation.
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz '^FuzzBatchCodec$$' -fuzztime 10s ./internal/cluster
	$(GO) test -run '^$$' -fuzz '^FuzzFrameDecode$$' -fuzztime 10s ./internal/storage

# Static analysis at pinned versions (fetches the tools on demand, so
# it needs network access; CI runs it as its own job).
lint:
	$(GO) run honnef.co/go/tools/cmd/staticcheck@$(STATICCHECK_VERSION) ./...
	$(GO) run golang.org/x/vuln/cmd/govulncheck@$(GOVULNCHECK_VERSION) ./...

# Documentation invariants: intra-repo markdown links resolve and every
# package has a godoc package comment (see cmd/docscheck).
docs-check:
	$(GO) run ./cmd/docscheck

vet:
	$(GO) vet ./...

fmt:
	gofmt -w .

fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

bench:
	$(GO) test -bench=. -benchtime=1x -run='^$$' ./...

ci: build vet fmt-check docs-check test failure-race bench failure-smoke restart-smoke c1-smoke fuzz-smoke
