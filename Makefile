# Local and CI entry points — .github/workflows/ci.yml calls exactly
# these targets, so a green `make ci` means a green workflow run
# (except `lint`, which fetches its pinned tools from the network and
# therefore runs in CI and on demand, not inside `make ci`).

GO ?= go

# Pinned static-analysis tool versions (the lint job must not float).
STATICCHECK_VERSION ?= 2025.1.1
GOVULNCHECK_VERSION ?= v1.1.4

# Coverage floor for the scheduling/storage/cluster core (percent).
# go test -cover must not report a combined total below this.
COVER_FLOOR ?= 65

# Label baked into the bench-json artifact (CI passes the commit sha).
BENCH_LABEL ?= local

# Previous artifact for bench-compare (CI downloads the last run's
# upload here before comparing).
BENCH_BASELINE ?= out/bench/previous/BENCH_previous.json

# Regression threshold for bench-compare, as a fraction (0.10 = 10%).
BENCH_THRESHOLD ?= 0.10

# Benchmark driven by the pprof-* targets (see docs/PERFORMANCE.md).
PPROF_BENCH ?= BenchmarkClusterAggregation
PPROF_PKG ?= .

.PHONY: build test vet fmt fmt-check bench bench-json bench-compare \
	pprof-cpu pprof-alloc cover-check tidy-check \
	failure-race service-race chunk-race stream-race adapt-race failure-smoke restart-smoke c1-smoke fuzz-smoke lint docs-check \
	smoke-e1 smoke-e6 smoke-e6-cross smoke-f1 smoke-r1 smoke-c1 smoke-e9 smoke-e10 smoke-e7s smoke-e11 ci

build:
	$(GO) build ./...

test:
	$(GO) test -race ./...

# Focused race-detector pass over the failure/re-routing paths (also
# covered by `test`, kept separate so CI reports them distinctly).
failure-race:
	$(GO) test -race -run 'Failure|Reroute|Partial|Tree' ./internal/cluster ./internal/iostrat

# Focused race-detector pass over the multi-tenant service: concurrent
# admission, the 4-tenant smoke, shared-broker accounting, eviction.
# (internal/cluster's service files also sit under cover-check's floor.)
service-race:
	$(GO) test -race -run 'Service' ./internal/cluster ./internal/iostrat

# Focused race-detector pass over the dedup chunk store: refcount GC
# sweeps racing tenant writes and evictions, concurrent retain/release,
# the restore matrix over the dedup stack.
chunk-race:
	$(GO) test -race -run 'Chunk|Dedup' ./internal/cluster ./internal/storage/chunk

# Focused race-detector pass over the streaming pipeline: publisher vs
# slow-consumer policies, subscriber churn during root failure, the
# streaming hook racing the store write (see docs/STREAMING.md).
stream-race:
	$(GO) test -race -run 'Stream|Subscribe|Publish|InSitu' ./internal/storage ./internal/cluster ./internal/iostrat

# Focused race-detector pass over mid-run tree re-formation: the epoch
# fence racing concurrent writers, streaming subscribers, and failure
# overlays, plus the scenario-driven DES adaptation paths (see
# docs/SCENARIOS.md).
adapt-race:
	$(GO) test -race -run 'Adapt|Reform|Scenario' ./internal/cluster ./internal/iostrat

# Experiment smoke matrix — one target per experiment so a broken
# experiment names itself in the CI job list (ci.yml fans these out via
# strategy.matrix).
smoke-e1:
	$(GO) run ./cmd/damaris-bench -quick -exp e1

smoke-e6:
	$(GO) run ./cmd/damaris-bench -quick -exp e6

# The cross-root E6 mode: -sched cluster-token restricts E6 to the
# cluster-wide token sweep (DES + runtime faces).
smoke-e6-cross:
	$(GO) run ./cmd/damaris-bench -quick -exp e6 -sched cluster-token

# E9 multi-tenant admission at smoke scale: the full tenancy × arrival
# × policy sweep including the EDF-beats-FIFO tail check.
smoke-e9:
	$(GO) run ./cmd/damaris-bench -quick -exp e9

# E10 incremental checkpoints at smoke scale: the overwrite-fraction
# dedup sweep plus the retention/GC leg, on both faces.
smoke-e10:
	$(GO) run ./cmd/damaris-bench -quick -exp e10

# E7S streaming pipeline at smoke scale: streaming vs file-then-read on
# the runtime and DES faces, plus the slow-consumer policy sweep.
smoke-e7s:
	$(GO) run ./cmd/damaris-bench -quick -exp e7s

# E11 scenario × adaptation sweep at smoke scale: every deterministic
# workload generator under static and adaptive trees on the DES face,
# plus the runtime-face NIC-step replay with a streaming subscriber.
smoke-e11:
	$(GO) run ./cmd/damaris-bench -quick -exp e11

smoke-f1: failure-smoke

smoke-r1: restart-smoke

smoke-c1: c1-smoke

# F1 failure-injection experiment at smoke scale: small node count,
# fixed seed, both the DES and the runtime cluster sweeps.
failure-smoke:
	$(GO) run ./cmd/damaris-bench -quick -exp f1

# R1 checkpoint/restart experiment at smoke scale: write objects +
# manifests into an sdf store, restore them, then replay the artifacts
# through -restart-from (the full object read path end to end).
restart-smoke:
	$(GO) run ./cmd/damaris-bench -quick -exp r1 -backend sdf -backend-dir out/restart-smoke
	$(GO) run ./cmd/damaris-bench -restart-from out/restart-smoke/fail0

# C1 compression smoke: the codec × dataset sweep with the adaptive
# selector at quick scale, then a compressed-store restart round trip
# on disk — write framed objects through the adaptive pipeline, replay
# them via -restart-from, and list them with sdfdump (codec + ratio).
c1-smoke:
	$(GO) run ./cmd/damaris-bench -quick -exp c1
	$(GO) run ./cmd/damaris-bench -quick -exp r1 -backend sdf -codec adaptive -backend-dir out/c1-smoke
	$(GO) run ./cmd/damaris-bench -restart-from out/c1-smoke/fail0
	$(GO) run ./cmd/sdfdump out/c1-smoke/fail0

# Short fuzz passes over the object decoders; `go test -fuzz` takes
# one package per invocation.
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz '^FuzzBatchCodec$$' -fuzztime 10s ./internal/cluster
	$(GO) test -run '^$$' -fuzz '^FuzzManifestV2Decode$$' -fuzztime 10s ./internal/cluster
	$(GO) test -run '^$$' -fuzz '^FuzzFrameDecode$$' -fuzztime 10s ./internal/storage
	$(GO) test -run '^$$' -fuzz '^FuzzChunkFrameDecode$$' -fuzztime 10s ./internal/storage/chunk

# Static analysis at pinned versions (fetches the tools on demand, so
# it needs network access; CI runs it as its own job).
lint:
	$(GO) run honnef.co/go/tools/cmd/staticcheck@$(STATICCHECK_VERSION) ./...
	$(GO) run golang.org/x/vuln/cmd/govulncheck@$(GOVULNCHECK_VERSION) ./...

# Documentation invariants: intra-repo markdown links resolve and every
# package has a godoc package comment (see cmd/docscheck).
docs-check:
	$(GO) run ./cmd/docscheck

vet:
	$(GO) vet ./...

fmt:
	gofmt -w .

fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

bench:
	$(GO) test -bench=. -benchtime=1x -run='^$$' ./...

# bench-json runs the benchmarks and archives them as a machine-readable
# BENCH_<label>.json under out/bench/, so the perf trajectory accumulates
# run over run (CI uploads the file as an artifact). Two steps, not a
# pipe: a failing benchmark run must fail the target, not hand benchjson
# a truncated stream it would happily parse.
bench-json:
	@mkdir -p out/bench
	$(GO) test -bench=. -benchtime=1x -run='^$$' ./... > out/bench/bench.txt
	$(GO) run ./cmd/benchjson -label $(BENCH_LABEL) \
		-out out/bench/BENCH_$(BENCH_LABEL).json < out/bench/bench.txt

# bench-compare diffs the freshly built BENCH_<label>.json against the
# previous run's artifact and fails on a >$(BENCH_THRESHOLD) regression
# in ns/op or MB/s. A missing baseline (first run, expired artifact)
# passes with a notice — see cmd/benchcompare.
bench-compare: bench-json
	$(GO) run ./cmd/benchcompare -old $(BENCH_BASELINE) \
		-new out/bench/BENCH_$(BENCH_LABEL).json -threshold $(BENCH_THRESHOLD)

# Profiling entry points for the hot-path work: run one benchmark long
# enough to sample, drop the profile under out/pprof/, and print the
# top functions. Override PPROF_BENCH/PPROF_PKG to aim elsewhere, e.g.
#   make pprof-cpu PPROF_BENCH=BenchmarkTimerDispatch PPROF_PKG=./internal/des
pprof-cpu:
	@mkdir -p out/pprof
	$(GO) test $(PPROF_PKG) -run '^$$' -bench '^$(PPROF_BENCH)$$' -benchtime 2s \
		-cpuprofile out/pprof/cpu.prof
	$(GO) tool pprof -top -nodecount=20 out/pprof/cpu.prof

pprof-alloc:
	@mkdir -p out/pprof
	$(GO) test $(PPROF_PKG) -run '^$$' -bench '^$(PPROF_BENCH)$$' -benchtime 2s \
		-memprofile out/pprof/alloc.prof
	$(GO) tool pprof -top -nodecount=20 -sample_index=alloc_space out/pprof/alloc.prof

# cover-check enforces the checked-in coverage floor over the scheduling
# core: internal/iostrat + internal/storage (chunk store included) +
# internal/cluster + internal/workload combined.
cover-check:
	@mkdir -p out
	$(GO) test -coverprofile=out/cover.out ./internal/iostrat ./internal/storage ./internal/storage/chunk ./internal/cluster ./internal/workload
	@$(GO) tool cover -func=out/cover.out | awk '/^total:/ { \
		sub("%","",$$3); \
		if ($$3+0 < $(COVER_FLOOR)) { \
			printf "coverage %.1f%% below the %d%% floor\n", $$3, $(COVER_FLOOR); exit 1 \
		} else { \
			printf "coverage %.1f%% (floor %d%%)\n", $$3, $(COVER_FLOOR) \
		} }'

# tidy-check fails when go.mod/go.sum drift from what go mod tidy would
# write.
tidy-check:
	$(GO) mod tidy -diff

ci: build vet fmt-check tidy-check docs-check test failure-race service-race chunk-race stream-race adapt-race cover-check bench \
	smoke-e1 smoke-e6 smoke-e6-cross smoke-f1 smoke-r1 smoke-c1 smoke-e9 smoke-e10 smoke-e7s smoke-e11 fuzz-smoke
