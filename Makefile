# Local and CI entry points — .github/workflows/ci.yml calls exactly
# these targets, so a green `make ci` means a green workflow run.

GO ?= go

.PHONY: build test vet fmt fmt-check bench failure-race failure-smoke restart-smoke docs-check ci

build:
	$(GO) build ./...

test:
	$(GO) test -race ./...

# Focused race-detector pass over the failure/re-routing paths (also
# covered by `test`, kept separate so CI reports them distinctly).
failure-race:
	$(GO) test -race -run 'Failure|Reroute|Partial|Tree' ./internal/cluster ./internal/iostrat

# F1 failure-injection experiment at smoke scale: small node count,
# fixed seed, both the DES and the runtime cluster sweeps.
failure-smoke:
	$(GO) run ./cmd/damaris-bench -quick -exp f1

# R1 checkpoint/restart experiment at smoke scale: write objects +
# manifests into an sdf store, restore them, then replay the artifacts
# through -restart-from (the full object read path end to end).
restart-smoke:
	$(GO) run ./cmd/damaris-bench -quick -exp r1 -backend sdf -backend-dir out/restart-smoke
	$(GO) run ./cmd/damaris-bench -restart-from out/restart-smoke/fail0

# Documentation invariants: intra-repo markdown links resolve and every
# package has a godoc package comment (see cmd/docscheck).
docs-check:
	$(GO) run ./cmd/docscheck

vet:
	$(GO) vet ./...

fmt:
	gofmt -w .

fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

bench:
	$(GO) test -bench=. -benchtime=1x -run='^$$' ./...

ci: build vet fmt-check docs-check test failure-race bench failure-smoke restart-smoke
